"""Versioned block codec for quantization-code streams (format v1).

This module is the encoding layer shared by the SZ-like and ZFP-like
compressors.  It replaces the legacy whole-stream encoder in
:mod:`repro.compression.encoding`, which packed every code at one *global*
bit width (a single outlier inflated the whole stream) and, on the
pointwise-relative paths, DEFLATEd an already-DEFLATEd inner section.
Following real SZ (Tao et al., IPDPS'17) the v1 codec instead:

* packs codes in fixed-size blocks (:data:`DEFAULT_BLOCK_SIZE` codes) at each
  block's minimal bit width, so a locally rough region cannot inflate the
  rest of the stream,
* routes codes wider than a cap (:data:`DEFAULT_WIDTH_CAP` bits) through an
  *escape channel* — SZ's "unpredictable values" — storing them verbatim and
  leaving a zero in the block stream,
* applies exactly **one** entropy (DEFLATE) pass over the whole frame.

v1 frame layout (everything little-endian)::

    magic    b"RBCF"
    version  uint16 (currently 1)
    body     one DEFLATE stream over length-prefixed sections
             (see encoding.pack_sections)

One of those sections is typically a *block stream* produced by
:func:`encode_signed`::

    header   <QIIQ>: code count, block size, width cap, escape count
    widths   one uint8 per block — that block's bit width (0 = all zero)
    bits     each block's codes zigzag-mapped and bit-packed LSB-first at
             the block's width, blocks concatenated in order
    escapes  positions (uint64 each) then raw zigzag values (uint64 each)

Compressors stamp ``format_version`` into ``CompressedBlob.meta``; payloads
without it predate this codec and are decoded through the compressors'
legacy paths.  Everything here is vectorised NumPy: per-width block groups
are gathered and packed with one fancy-indexed assignment per distinct
width (at most 64 groups), never per element.

Run the codec microbenchmarks with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_codec.py -q -s

which also writes ``BENCH_codec.json`` (ratio + MB/s per workload).
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterable, List

import numpy as np

from repro.compression.encoding import (
    pack_sections,
    unpack_sections,
    zigzag_decode,
    zigzag_encode,
)

__all__ = [
    "FORMAT_VERSION",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_WIDTH_CAP",
    "CodecFormatError",
    "encode_signed",
    "decode_signed",
    "encode_frame",
    "decode_frame",
]

#: Current payload format version, stamped into ``CompressedBlob.meta``.
FORMAT_VERSION = 1

#: Codes per block; each block is packed at its own minimal bit width.
DEFAULT_BLOCK_SIZE = 1024

#: Codes needing more bits than this go through the escape channel.
DEFAULT_WIDTH_CAP = 32

_FRAME_MAGIC = b"RBCF"
_FRAME_HEADER = struct.Struct("<4sH")
_STREAM_HEADER = struct.Struct("<QIIQ")  # count, block size, width cap, escapes


class CodecFormatError(ValueError):
    """Raised when a payload is not a valid codec frame."""


def _bit_widths(values: np.ndarray) -> np.ndarray:
    """Vectorised ``int.bit_length`` for unsigned 64-bit values."""
    values = np.asarray(values, dtype=np.uint64)
    widths = np.zeros(values.shape, dtype=np.uint8)
    v = values.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        mask = v >= np.uint64(1) << np.uint64(shift)
        widths[mask] += np.uint8(shift)
        v[mask] >>= np.uint64(shift)
    widths[values > 0] += np.uint8(1)
    return widths


# ----------------------------------------------------------------------
# block stream
# ----------------------------------------------------------------------
def encode_signed(
    codes: np.ndarray,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    width_cap: int = DEFAULT_WIDTH_CAP,
) -> bytes:
    """Encode signed int64 codes as a v1 block stream (no entropy stage).

    Codes are zigzag-mapped, outliers wider than ``width_cap`` bits are
    diverted to the escape channel, and each ``block_size``-code block is
    bit-packed at its own minimal width.
    """
    codes = np.ascontiguousarray(codes, dtype=np.int64).reshape(-1)
    block_size = int(block_size)
    width_cap = int(width_cap)
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    if not (1 <= width_cap <= 64):
        raise ValueError(f"width_cap must be in [1, 64], got {width_cap}")

    unsigned = zigzag_encode(codes)
    count = unsigned.size
    if count == 0:
        return _STREAM_HEADER.pack(0, block_size, width_cap, 0)

    if width_cap >= 64:
        escape_mask = np.zeros(count, dtype=bool)
    else:
        escape_mask = unsigned >= np.uint64(1) << np.uint64(width_cap)
    escape_positions = np.flatnonzero(escape_mask).astype(np.uint64)
    escape_values = unsigned[escape_mask]
    inline = np.where(escape_mask, np.uint64(0), unsigned)

    n_blocks = -(-count // block_size)
    padded = np.zeros(n_blocks * block_size, dtype=np.uint64)
    padded[:count] = inline
    blocks = padded.reshape(n_blocks, block_size)
    widths = _bit_widths(blocks.max(axis=1))
    bit_offsets = np.concatenate(
        ([0], np.cumsum(widths.astype(np.int64) * block_size))
    )
    bits = np.zeros(int(bit_offsets[-1]), dtype=np.uint8)
    for width in np.unique(widths):
        w = int(width)
        if w == 0:
            continue
        sel = np.flatnonzero(widths == width)
        shifts = np.arange(w, dtype=np.uint64)
        bit_matrix = (
            (blocks[sel][:, :, None] >> shifts[None, None, :]) & np.uint64(1)
        ).astype(np.uint8)
        positions = (
            bit_offsets[sel][:, None]
            + np.arange(block_size * w, dtype=np.int64)[None, :]
        )
        bits[positions.reshape(-1)] = bit_matrix.reshape(-1)
    packed = np.packbits(bits, bitorder="little")

    return b"".join(
        [
            _STREAM_HEADER.pack(count, block_size, width_cap, escape_values.size),
            widths.tobytes(),
            packed.tobytes(),
            escape_positions.tobytes(),
            escape_values.tobytes(),
        ]
    )


def decode_signed(buffer: bytes) -> np.ndarray:
    """Inverse of :func:`encode_signed`; returns the int64 code array."""
    count, block_size, width_cap, n_escapes = _STREAM_HEADER.unpack_from(buffer, 0)
    offset = _STREAM_HEADER.size
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if not (1 <= width_cap <= 64):
        raise CodecFormatError(f"corrupt block stream: width cap {width_cap}")
    if block_size < 1:
        raise CodecFormatError(f"corrupt block stream: block size {block_size}")

    n_blocks = -(-count // block_size)
    widths = np.frombuffer(buffer, dtype=np.uint8, count=n_blocks, offset=offset)
    offset += n_blocks
    bit_offsets = np.concatenate(
        ([0], np.cumsum(widths.astype(np.int64) * block_size))
    )
    total_bits = int(bit_offsets[-1])
    nbytes = (total_bits + 7) // 8
    raw = np.frombuffer(buffer, dtype=np.uint8, count=nbytes, offset=offset)
    offset += nbytes
    bits = np.unpackbits(raw, bitorder="little")[:total_bits]

    blocks = np.zeros((n_blocks, block_size), dtype=np.uint64)
    for width in np.unique(widths):
        w = int(width)
        if w == 0:
            continue
        sel = np.flatnonzero(widths == width)
        positions = (
            bit_offsets[sel][:, None]
            + np.arange(block_size * w, dtype=np.int64)[None, :]
        )
        group = bits[positions.reshape(-1)].reshape(len(sel), block_size, w)
        shifts = np.arange(w, dtype=np.uint64)
        blocks[sel] = (group.astype(np.uint64) << shifts[None, None, :]).sum(
            axis=2, dtype=np.uint64
        )

    unsigned = blocks.reshape(-1)[:count]
    if n_escapes:
        positions = np.frombuffer(
            buffer, dtype=np.uint64, count=n_escapes, offset=offset
        )
        offset += 8 * n_escapes
        values = np.frombuffer(buffer, dtype=np.uint64, count=n_escapes, offset=offset)
        if positions.size and int(positions.max()) >= count:
            raise CodecFormatError(
                f"corrupt block stream: escape position {int(positions.max())} "
                f">= code count {count}"
            )
        unsigned[positions.astype(np.int64)] = values
    return zigzag_decode(unsigned)


# ----------------------------------------------------------------------
# frame = versioned header + one entropy pass
# ----------------------------------------------------------------------
def encode_frame(sections: Iterable[bytes], *, level: int = 6) -> bytes:
    """Wrap sections in a v1 frame with a single DEFLATE pass."""
    body = zlib.compress(pack_sections(list(sections)), level)
    return _FRAME_HEADER.pack(_FRAME_MAGIC, FORMAT_VERSION) + body


def decode_frame(payload: bytes) -> List[bytes]:
    """Inverse of :func:`encode_frame`; returns the raw sections."""
    if len(payload) < _FRAME_HEADER.size:
        raise CodecFormatError("payload too short for a codec frame")
    magic, version = _FRAME_HEADER.unpack_from(payload, 0)
    if magic != _FRAME_MAGIC:
        raise CodecFormatError(f"bad codec frame magic {magic!r}")
    if version != FORMAT_VERSION:
        raise CodecFormatError(
            f"unsupported codec format version {version} (supported: {FORMAT_VERSION})"
        )
    return unpack_sections(zlib.decompress(payload[_FRAME_HEADER.size :]))
