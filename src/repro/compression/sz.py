"""SZ-like prediction-based, error-bounded lossy compressor.

The real SZ (Di & Cappello, IPDPS'16; Tao et al., IPDPS'17) predicts each
value from its decompressed neighbours, quantizes the prediction residual
with an error-bounded linear-scaling quantizer and entropy-codes the
quantization codes.  This reproduction follows the same model with a
vectorised formulation (see :mod:`repro.compression.quantization`):

1. resolve the error bound (absolute / value-range relative directly;
   pointwise relative via the log transform of
   :mod:`repro.compression.relative`),
2. quantize all values onto the global error-bounded integer grid,
3. apply a first-order ("lorenzo") or second-order ("linear") integer
   predictor — ``np.diff`` of the codes — so smooth data produces tiny codes,
4. encode the residual codes with the versioned block codec
   (:mod:`repro.compression.codec`): per-block minimal bit widths, an escape
   channel for outlier codes (SZ's "unpredictable values"), and exactly one
   DEFLATE pass over the whole frame.

Payloads carry ``format_version`` in their metadata; payloads written before
the block codec (no ``format_version`` key) still decode through the legacy
paths (global-width bit packing, and a nested DEFLATE stream inside the
pointwise-relative frame).

The compressor guarantees the requested error bound for every element; if the
bound is unachievable with 63-bit integer codes it falls back to lossless
storage of the raw bytes (still satisfying the bound trivially).
"""

from __future__ import annotations

import time
import zlib
from typing import List

import numpy as np

from repro.compression.base import (
    CompressedBlob,
    CompressionRecord,
    Compressor,
    register_compressor,
)
from repro.compression.codec import (
    FORMAT_VERSION,
    decode_frame,
    decode_signed,
    encode_frame,
    encode_signed,
)
from repro.compression.encoding import (
    unpack_sections,
    unpack_unsigned,
    zigzag_decode,
)
from repro.compression.errorbounds import ErrorBound, ErrorBoundMode
from repro.compression.quantization import (
    QuantizationOverflow,
    QuantizedArray,
    dequantize_absolute,
    quantize_absolute,
)
from repro.compression.relative import (
    PointwiseRelativeTransform,
    pw_rel_sections,
    reconstruct_from_masks,
)

__all__ = ["SZCompressor"]

_PREDICTORS = ("lorenzo", "linear")


def _predict_codes(codes: np.ndarray, order: int) -> np.ndarray:
    """Apply an integer differencing predictor of the given order."""
    residuals = codes
    for _ in range(order):
        if residuals.size <= 1:
            break
        residuals = np.concatenate(([residuals[0]], np.diff(residuals)))
    return residuals


def _unpredict_codes(residuals: np.ndarray, order: int) -> np.ndarray:
    """Invert :func:`_predict_codes`."""
    codes = residuals
    for _ in range(order):
        if codes.size <= 1:
            break
        codes = np.cumsum(codes)
    return codes


class SZCompressor(Compressor):
    """Prediction + error-bounded quantization lossy compressor (SZ-like).

    Parameters
    ----------
    error_bound:
        The distortion budget.  Accepts an :class:`ErrorBound` or a plain
        float, which is interpreted as a *pointwise relative* bound — the
        paper's convention (``eb = 1e-4`` for Jacobi/CG).
    predictor:
        ``"lorenzo"`` (first-order differencing, default) or ``"linear"``
        (second-order differencing), mirroring SZ's preceding-neighbour and
        linear-fit predictors.
    zlib_level:
        DEFLATE effort for the (single) entropy stage.
    """

    name = "sz"
    lossless = False

    def __init__(
        self,
        error_bound: "ErrorBound | float" = 1e-4,
        *,
        predictor: str = "lorenzo",
        zlib_level: int = 6,
    ) -> None:
        super().__init__()
        if not isinstance(error_bound, ErrorBound):
            error_bound = ErrorBound.pointwise_relative(float(error_bound))
        if predictor not in _PREDICTORS:
            raise ValueError(f"predictor must be one of {_PREDICTORS}, got {predictor!r}")
        if not (0 <= int(zlib_level) <= 9):
            raise ValueError(f"zlib_level must be in [0, 9], got {zlib_level}")
        self.error_bound = error_bound
        self.predictor = predictor
        self.zlib_level = int(zlib_level)

    # ------------------------------------------------------------------
    def with_error_bound(self, error_bound: "ErrorBound | float") -> "SZCompressor":
        """Return a new compressor identical to this one but with a new bound.

        Used by the adaptive GMRES policy (Theorem 3), which changes the bound
        at every checkpoint based on the current residual norm.
        """
        return SZCompressor(
            error_bound, predictor=self.predictor, zlib_level=self.zlib_level
        )

    # ------------------------------------------------------------------
    def _compress_array(self, data: np.ndarray) -> CompressedBlob:
        return self._compress_impl(data, want_recon=False)[0]

    def compress_with_reconstruction(self, data):
        """Compress and derive the reconstruction from the in-memory codes.

        The decode path dequantizes exactly the integer codes the encode
        path produced (the block codec and the differencing predictor are
        both lossless round trips), so dequantizing the codes still in
        memory yields the same floats as ``decompress(blob)`` — without
        paying the DEFLATE + bit-unpack decode.
        """
        arr = np.ascontiguousarray(data)
        if arr.size == 0:
            raise ValueError("cannot compress an empty array")
        start = time.perf_counter()
        blob, recon = self._compress_impl(arr, want_recon=True)
        elapsed = time.perf_counter() - start
        record = CompressionRecord("compress", arr.nbytes, blob.nbytes, elapsed)
        self.records.append(record)
        self.last_record = record
        recon = recon.astype(np.dtype(blob.dtype), copy=False).reshape(blob.shape)
        return blob, record, recon

    def _compress_impl(
        self, data: np.ndarray, *, want_recon: bool
    ) -> "tuple[CompressedBlob, np.ndarray | None]":
        original_dtype = data.dtype
        flat = np.ascontiguousarray(data, dtype=np.float64).reshape(-1)
        meta = {
            "error_bound": self.error_bound.describe(),
            "predictor": self.predictor,
            "format_version": FORMAT_VERSION,
        }

        if self.error_bound.mode is ErrorBoundMode.POINTWISE_RELATIVE:
            payload, scheme, recon = self._compress_pointwise_relative(
                flat, want_recon=want_recon
            )
        else:
            payload, scheme, recon = self._compress_absolute_like(
                flat, want_recon=want_recon
            )
        meta["scheme"] = scheme
        blob = CompressedBlob(
            payload=payload,
            shape=tuple(data.shape),
            dtype=np.dtype(original_dtype).str,
            compressor=self.name,
            meta=meta,
        )
        return blob, recon

    def _decompress_array(self, blob: CompressedBlob) -> np.ndarray:
        scheme = blob.meta.get("scheme", "abs")
        if scheme == "raw":
            flat = np.frombuffer(zlib.decompress(blob.payload), dtype=np.float64).copy()
        elif blob.format_version >= 1:
            sections = decode_frame(blob.payload)
            if scheme == "pw_rel":
                flat = self._decode_pointwise_relative_sections(sections)
            else:
                quantized = self._decode_quantized_sections(sections)
                flat = dequantize_absolute(quantized)
        elif scheme == "pw_rel":
            flat = self._legacy_decompress_pointwise_relative(blob.payload)
        else:
            flat = self._legacy_decompress_absolute_like(blob.payload)
        return flat.astype(np.dtype(blob.dtype), copy=False).reshape(blob.shape)

    # -- absolute / value-range relative -------------------------------
    def _compress_absolute_like(
        self, flat: np.ndarray, *, want_recon: bool = False
    ) -> "tuple[bytes, str, np.ndarray | None]":
        bound = self.error_bound.absolute_for(flat)
        if bound <= 0.0:  # resolved bound underflowed (denormal-scale data)
            return self._raw_fallback(flat), "raw", flat.copy() if want_recon else None
        try:
            quantized = quantize_absolute(flat, bound)
        except QuantizationOverflow:
            return self._raw_fallback(flat), "raw", flat.copy() if want_recon else None
        payload = encode_frame(
            self._quantized_sections(quantized), level=self.zlib_level
        )
        recon = dequantize_absolute(quantized) if want_recon else None
        return payload, "abs", recon

    # -- pointwise relative ---------------------------------------------
    def _compress_pointwise_relative(
        self, flat: np.ndarray, *, want_recon: bool = False
    ) -> "tuple[bytes, str, np.ndarray | None]":
        transform = PointwiseRelativeTransform.forward(flat, self.error_bound.value)
        try:
            quantized = quantize_absolute(transform.log_values, transform.log_bound)
        except QuantizationOverflow:
            return self._raw_fallback(flat), "raw", flat.copy() if want_recon else None
        sections = pw_rel_sections(
            transform, self._quantized_sections(quantized), flat.size
        )
        payload = encode_frame(sections, level=self.zlib_level)
        recon = (
            transform.backward(dequantize_absolute(quantized)) if want_recon else None
        )
        return payload, "pw_rel", recon

    def _decode_pointwise_relative_sections(self, sections: List[bytes]) -> np.ndarray:
        count_section, header, order_section, packed, neg_section, zero_section = sections
        count = int(np.frombuffer(count_section, dtype=np.int64)[0])
        quantized = self._decode_quantized_sections([header, order_section, packed])
        log_recon = dequantize_absolute(quantized)
        return reconstruct_from_masks(log_recon, neg_section, zero_section, count)

    # -- v1 code-stream helpers -----------------------------------------
    def _quantized_sections(self, quantized: QuantizedArray) -> List[bytes]:
        order = 1 if self.predictor == "lorenzo" else 2
        residuals = _predict_codes(quantized.codes, order)
        return [
            np.asarray([quantized.quantum], dtype=np.float64).tobytes(),
            np.asarray([order], dtype=np.int64).tobytes(),
            encode_signed(residuals),
        ]

    def _decode_quantized_sections(self, sections: List[bytes]) -> QuantizedArray:
        header, order_section, packed = sections
        quantum = float(np.frombuffer(header, dtype=np.float64)[0])
        order = int(np.frombuffer(order_section, dtype=np.int64)[0])
        codes = _unpredict_codes(decode_signed(packed), order)
        return QuantizedArray(codes=codes, quantum=quantum)

    def _raw_fallback(self, flat: np.ndarray) -> bytes:
        return zlib.compress(flat.astype(np.float64).tobytes(), self.zlib_level)

    # -- legacy (format version 0) decode paths --------------------------
    # Payloads written before the block codec: global-width bit packing via
    # encoding.pack_unsigned, and a *nested* DEFLATE stream inside the
    # pointwise-relative frame.  Kept so old checkpoints remain readable.
    def _legacy_decompress_absolute_like(self, payload: bytes) -> np.ndarray:
        quantized, _ = self._legacy_decode_quantized(payload)
        return dequantize_absolute(quantized)

    def _legacy_decompress_pointwise_relative(self, payload: bytes) -> np.ndarray:
        frame = zlib.decompress(payload)
        count_section, log_section, neg_section, zero_section = unpack_sections(frame)
        count = int(np.frombuffer(count_section, dtype=np.int64)[0])
        quantized, _ = self._legacy_decode_quantized(log_section, precompressed=True)
        log_recon = dequantize_absolute(quantized)
        return reconstruct_from_masks(log_recon, neg_section, zero_section, count)

    def _legacy_decode_quantized(
        self, payload: bytes, *, precompressed: bool = False
    ) -> "tuple[QuantizedArray, int]":
        frame = payload if precompressed else zlib.decompress(payload)
        # When nested inside the legacy pw_rel frame the inner section is
        # itself a zlib stream.
        if precompressed:
            frame = zlib.decompress(frame)
        header, order_bytes, packed = unpack_sections(frame)
        quantum = float(np.frombuffer(header, dtype=np.float64)[0])
        order = int(np.frombuffer(order_bytes, dtype=np.int64)[0])
        codes_unsigned, _ = unpack_unsigned(packed)
        residuals = zigzag_decode(codes_unsigned)
        codes = _unpredict_codes(residuals, order)
        return QuantizedArray(codes=codes, quantum=quantum), order


def _make_sz(**kwargs) -> SZCompressor:
    return SZCompressor(**kwargs)


register_compressor("sz", _make_sz)
