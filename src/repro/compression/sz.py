"""SZ-like prediction-based, error-bounded lossy compressor.

The real SZ (Di & Cappello, IPDPS'16; Tao et al., IPDPS'17) predicts each
value from its decompressed neighbours, quantizes the prediction residual
with an error-bounded linear-scaling quantizer and entropy-codes the
quantization codes.  This reproduction follows the same model with a
vectorised formulation (see :mod:`repro.compression.quantization`):

1. resolve the error bound (absolute / value-range relative directly;
   pointwise relative via the log transform of
   :mod:`repro.compression.relative`),
2. quantize all values onto the global error-bounded integer grid,
3. apply a first-order ("lorenzo") or second-order ("linear") integer
   predictor — ``np.diff`` of the codes — so smooth data produces tiny codes,
4. split the zigzag-mapped residual codes into byte planes
   (:func:`~repro.compression.filters.code_planes`) and ship them through
   the sharded, entropy-gated frame of :mod:`repro.compression.sharded`
   (payload format v2): the noise-like low plane stores raw, the structured
   upper planes DEFLATE to almost nothing — smaller *and* faster than the
   v1 bit-packing + whole-frame DEFLATE it replaces.

Payloads carry ``format_version`` in their metadata and every earlier
format still decodes: v1 blobs through the retained block-codec frame path
(per-block minimal bit widths, escape channel, one DEFLATE pass), and
pre-codec blobs (no ``format_version`` key) through the legacy paths
(global-width bit packing, and a nested DEFLATE stream inside the
pointwise-relative frame).  The quantization codes are identical across
v1 and v2 — only their byte representation changed — so reconstructions
are bitwise identical whichever format carried them.

The compressor guarantees the requested error bound for every element; if the
bound is unachievable with 63-bit integer codes it falls back to lossless
storage of the raw bytes (still satisfying the bound trivially).
"""

from __future__ import annotations

import struct
import time
import zlib
from typing import List, Optional

import numpy as np

from repro.compression.base import (
    CompressedBlob,
    CompressionRecord,
    Compressor,
    register_compressor,
)
from repro.compression.codec import (
    decode_frame,
    decode_signed,
)
from repro.compression.encoding import (
    unpack_sections,
    unpack_unsigned,
    zigzag_decode,
    zigzag_encode,
)
from repro.compression.filters import code_planes, codes_from_planes
from repro.compression.sharded import (
    SHARDED_FORMAT_VERSION,
    compress_sections,
    decompress_sections,
)
from repro.compression.errorbounds import ErrorBound, ErrorBoundMode
from repro.compression.quantization import (
    QuantizationOverflow,
    QuantizedArray,
    dequantize_absolute,
    quantize_absolute,
)
from repro.compression.relative import (
    PointwiseRelativeTransform,
    reconstruct_from_masks,
)

__all__ = ["SZCompressor"]

_PREDICTORS = ("lorenzo", "linear")

#: v2 code-stream header section: quantum (f64), predictor order (i64),
#: code count, total element count (== code count except under ``pw_rel``,
#: where zeros are masked out of the code stream), plane count k.
_V2_CODE_HEADER = struct.Struct("<dqQQB")


def _predict_codes(codes: np.ndarray, order: int) -> np.ndarray:
    """Apply an integer differencing predictor of the given order."""
    residuals = codes
    for _ in range(order):
        if residuals.size <= 1:
            break
        residuals = np.concatenate(([residuals[0]], np.diff(residuals)))
    return residuals


def _unpredict_codes(residuals: np.ndarray, order: int) -> np.ndarray:
    """Invert :func:`_predict_codes`."""
    codes = residuals
    for _ in range(order):
        if codes.size <= 1:
            break
        codes = np.cumsum(codes)
    return codes


class SZCompressor(Compressor):
    """Prediction + error-bounded quantization lossy compressor (SZ-like).

    Parameters
    ----------
    error_bound:
        The distortion budget.  Accepts an :class:`ErrorBound` or a plain
        float, which is interpreted as a *pointwise relative* bound — the
        paper's convention (``eb = 1e-4`` for Jacobi/CG).
    predictor:
        ``"lorenzo"`` (first-order differencing, default) or ``"linear"``
        (second-order differencing), mirroring SZ's preceding-neighbour and
        linear-fit predictors.
    zlib_level:
        DEFLATE effort for the entropy-coded shards (and the raw fallback).
        Defaults to 2: the zigzag code planes are either near-constant or
        near-uniform, so deeper match search buys almost nothing at several
        times the encode cost.
    threads:
        Shard-compression worker count for this instance; ``None`` defers
        to ``REPRO_COMPRESS_THREADS``/CPU count at call time.
    """

    name = "sz"
    lossless = False

    def __init__(
        self,
        error_bound: "ErrorBound | float" = 1e-4,
        *,
        predictor: str = "lorenzo",
        zlib_level: int = 2,
        threads: Optional[int] = None,
    ) -> None:
        super().__init__()
        if not isinstance(error_bound, ErrorBound):
            error_bound = ErrorBound.pointwise_relative(float(error_bound))
        if predictor not in _PREDICTORS:
            raise ValueError(f"predictor must be one of {_PREDICTORS}, got {predictor!r}")
        if not (0 <= int(zlib_level) <= 9):
            raise ValueError(f"zlib_level must be in [0, 9], got {zlib_level}")
        self.error_bound = error_bound
        self.predictor = predictor
        self.zlib_level = int(zlib_level)
        self.threads = None if threads is None else max(1, int(threads))

    # ------------------------------------------------------------------
    def with_error_bound(self, error_bound: "ErrorBound | float") -> "SZCompressor":
        """Return a new compressor identical to this one but with a new bound.

        Used by the adaptive GMRES policy (Theorem 3), which changes the bound
        at every checkpoint based on the current residual norm.
        """
        return SZCompressor(
            error_bound,
            predictor=self.predictor,
            zlib_level=self.zlib_level,
            threads=self.threads,
        )

    # ------------------------------------------------------------------
    def _compress_array(self, data: np.ndarray) -> CompressedBlob:
        return self._compress_impl(data, want_recon=False)[0]

    def compress_with_reconstruction(self, data):
        """Compress and derive the reconstruction from the in-memory codes.

        The decode path dequantizes exactly the integer codes the encode
        path produced (the block codec and the differencing predictor are
        both lossless round trips), so dequantizing the codes still in
        memory yields the same floats as ``decompress(blob)`` — without
        paying the DEFLATE + bit-unpack decode.
        """
        arr = np.ascontiguousarray(data)
        if arr.size == 0:
            raise ValueError("cannot compress an empty array")
        start = time.perf_counter()
        blob, recon = self._compress_impl(arr, want_recon=True)
        elapsed = time.perf_counter() - start
        record = CompressionRecord("compress", arr.nbytes, blob.nbytes, elapsed)
        self.records.append(record)
        self.last_record = record
        recon = recon.astype(np.dtype(blob.dtype), copy=False).reshape(blob.shape)
        return blob, record, recon

    def _compress_impl(
        self, data: np.ndarray, *, want_recon: bool
    ) -> "tuple[CompressedBlob, np.ndarray | None]":
        original_dtype = data.dtype
        flat = np.ascontiguousarray(data, dtype=np.float64).reshape(-1)
        meta = {
            "error_bound": self.error_bound.describe(),
            "predictor": self.predictor,
            "format_version": SHARDED_FORMAT_VERSION,
        }

        if self.error_bound.mode is ErrorBoundMode.POINTWISE_RELATIVE:
            payload, scheme, recon = self._compress_pointwise_relative(
                flat, want_recon=want_recon
            )
        else:
            payload, scheme, recon = self._compress_absolute_like(
                flat, want_recon=want_recon
            )
        meta["scheme"] = scheme
        blob = CompressedBlob(
            payload=payload,
            shape=tuple(data.shape),
            dtype=np.dtype(original_dtype).str,
            compressor=self.name,
            meta=meta,
        )
        return blob, recon

    def _decompress_array(self, blob: CompressedBlob) -> np.ndarray:
        scheme = blob.meta.get("scheme", "abs")
        if scheme == "raw":
            flat = np.frombuffer(zlib.decompress(blob.payload), dtype=np.float64).copy()
        elif blob.format_version >= SHARDED_FORMAT_VERSION:
            flat = self._decode_v2(blob.payload, scheme)
        elif blob.format_version >= 1:
            sections = decode_frame(blob.payload)
            if scheme == "pw_rel":
                flat = self._decode_pointwise_relative_sections(sections)
            else:
                quantized = self._decode_quantized_sections(sections)
                flat = dequantize_absolute(quantized)
        elif scheme == "pw_rel":
            flat = self._legacy_decompress_pointwise_relative(blob.payload)
        else:
            flat = self._legacy_decompress_absolute_like(blob.payload)
        return flat.astype(np.dtype(blob.dtype), copy=False).reshape(blob.shape)

    # -- absolute / value-range relative -------------------------------
    def _compress_absolute_like(
        self, flat: np.ndarray, *, want_recon: bool = False
    ) -> "tuple[bytes, str, np.ndarray | None]":
        bound = self.error_bound.absolute_for(flat)
        if bound <= 0.0:  # resolved bound underflowed (denormal-scale data)
            return self._raw_fallback(flat), "raw", flat.copy() if want_recon else None
        try:
            quantized = quantize_absolute(flat, bound)
        except QuantizationOverflow:
            return self._raw_fallback(flat), "raw", flat.copy() if want_recon else None
        payload = compress_sections(
            self._code_sections(quantized, flat.size),
            level=self.zlib_level,
            threads=self.threads,
        )
        recon = dequantize_absolute(quantized) if want_recon else None
        return payload, "abs", recon

    # -- pointwise relative ---------------------------------------------
    def _compress_pointwise_relative(
        self, flat: np.ndarray, *, want_recon: bool = False
    ) -> "tuple[bytes, str, np.ndarray | None]":
        transform = PointwiseRelativeTransform.forward(flat, self.error_bound.value)
        try:
            # forward() already validated finiteness of the input, and the log
            # of a finite nonzero magnitude is finite — skip the second scan.
            quantized = quantize_absolute(
                transform.log_values, transform.log_bound, checked=False
            )
        except QuantizationOverflow:
            return self._raw_fallback(flat), "raw", flat.copy() if want_recon else None
        sections = self._code_sections(quantized, flat.size)
        # packbits accepts bool arrays directly; the astype copy is waste.
        sections.append(np.packbits(transform.negative_mask))
        sections.append(np.packbits(transform.zero_mask))
        payload = compress_sections(
            sections, level=self.zlib_level, threads=self.threads
        )
        recon = (
            transform.backward(dequantize_absolute(quantized)) if want_recon else None
        )
        return payload, "pw_rel", recon

    # -- v2 code-stream helpers (byte planes in a sharded frame) --------
    def _code_sections(self, quantized: QuantizedArray, total_count: int) -> List:
        """v2 sections for one quantized code stream: header, then planes."""
        order = 1 if self.predictor == "lorenzo" else 2
        residuals = _predict_codes(quantized.codes, order)
        planes = code_planes(zigzag_encode(residuals))
        header = _V2_CODE_HEADER.pack(
            quantized.quantum,
            order,
            quantized.codes.size,
            int(total_count),
            len(planes),
        )
        return [header, *planes]

    def _decode_v2(self, payload, scheme: str) -> np.ndarray:
        sections = decompress_sections(payload)
        quantum, order, count, total, k = _V2_CODE_HEADER.unpack(bytes(sections[0]))
        residuals = zigzag_decode(codes_from_planes(sections[1:1 + k], count))
        codes = _unpredict_codes(residuals, order)
        quantized = QuantizedArray(codes=codes, quantum=quantum)
        recon = dequantize_absolute(quantized)
        if scheme != "pw_rel":
            return recon
        neg_section, zero_section = sections[1 + k], sections[2 + k]
        return reconstruct_from_masks(recon, neg_section, zero_section, total)

    def _decode_pointwise_relative_sections(self, sections: List[bytes]) -> np.ndarray:
        count_section, header, order_section, packed, neg_section, zero_section = sections
        count = int(np.frombuffer(count_section, dtype=np.int64)[0])
        quantized = self._decode_quantized_sections([header, order_section, packed])
        log_recon = dequantize_absolute(quantized)
        return reconstruct_from_masks(log_recon, neg_section, zero_section, count)

    # -- v1 code-stream decode helper -----------------------------------
    def _decode_quantized_sections(self, sections: List[bytes]) -> QuantizedArray:
        header, order_section, packed = sections
        quantum = float(np.frombuffer(header, dtype=np.float64)[0])
        order = int(np.frombuffer(order_section, dtype=np.int64)[0])
        codes = _unpredict_codes(decode_signed(packed), order)
        return QuantizedArray(codes=codes, quantum=quantum)

    def _raw_fallback(self, flat: np.ndarray) -> bytes:
        return zlib.compress(flat.astype(np.float64).tobytes(), self.zlib_level)

    # -- legacy (format version 0) decode paths --------------------------
    # Payloads written before the block codec: global-width bit packing via
    # encoding.pack_unsigned, and a *nested* DEFLATE stream inside the
    # pointwise-relative frame.  Kept so old checkpoints remain readable.
    def _legacy_decompress_absolute_like(self, payload: bytes) -> np.ndarray:
        quantized, _ = self._legacy_decode_quantized(payload)
        return dequantize_absolute(quantized)

    def _legacy_decompress_pointwise_relative(self, payload: bytes) -> np.ndarray:
        frame = zlib.decompress(payload)
        count_section, log_section, neg_section, zero_section = unpack_sections(frame)
        count = int(np.frombuffer(count_section, dtype=np.int64)[0])
        quantized, _ = self._legacy_decode_quantized(log_section, precompressed=True)
        log_recon = dequantize_absolute(quantized)
        return reconstruct_from_masks(log_recon, neg_section, zero_section, count)

    def _legacy_decode_quantized(
        self, payload: bytes, *, precompressed: bool = False
    ) -> "tuple[QuantizedArray, int]":
        frame = payload if precompressed else zlib.decompress(payload)
        # When nested inside the legacy pw_rel frame the inner section is
        # itself a zlib stream.
        if precompressed:
            frame = zlib.decompress(frame)
        header, order_bytes, packed = unpack_sections(frame)
        quantum = float(np.frombuffer(header, dtype=np.float64)[0])
        order = int(np.frombuffer(order_bytes, dtype=np.int64)[0])
        codes_unsigned, _ = unpack_unsigned(packed)
        residuals = zigzag_decode(codes_unsigned)
        codes = _unpredict_codes(residuals, order)
        return QuantizedArray(codes=codes, quantum=quantum), order


def _make_sz(**kwargs) -> SZCompressor:
    return SZCompressor(**kwargs)


register_compressor("sz", _make_sz)
