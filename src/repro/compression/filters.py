"""Pre-entropy filters: Blosc-style byte shuffle and entropy gating.

DEFLATE sees a float64 checkpoint vector as an interleaved stream of
exponent and mantissa bytes and finds almost no runs in it — that is why
the seed pipeline spent ~95% of a lossless snapshot inside one
``zlib.compress(level=6)`` call for a ratio of barely 1.04.  Transposing
the buffer into *byte planes* (all byte-0 bytes, then all byte-1 bytes, …)
groups bytes of equal significance: sign/exponent planes of solver-shaped
data are near-constant and collapse to nothing, while the low mantissa
planes are close to uniform noise that no entropy coder can shrink.

The second half of the trick is to *measure* that: :func:`plane_entropy`
estimates the Shannon entropy of a byte buffer from its histogram, and the
sharded frame (:mod:`repro.compression.sharded`) stores shards whose
entropy exceeds :data:`ENTROPY_GATE_BITS` raw instead of burning DEFLATE
time on incompressible mantissa bytes.  Both filters are exactly
invertible; the shuffle round trip is pinned bitwise (including denormals,
NaN payloads and negative zero) in ``tests/compression/test_filters.py``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ENTROPY_GATE_BITS",
    "byte_shuffle",
    "byte_unshuffle",
    "assemble_planes",
    "plane_entropy",
    "code_planes",
    "codes_from_planes",
]

#: Shards whose byte-histogram entropy meets this many bits/byte are stored
#: raw: DEFLATE cannot win more than the stream overhead on them, and the
#: attempt costs more time than the whole rest of the snapshot.  Measured on
#: solver iterates: mantissa planes sit at ~7.97 bits, the exponent planes
#: that DEFLATE *can* shrink at <= 7.6.
ENTROPY_GATE_BITS = 7.4

#: Entropy is estimated on at most this many bytes per shard (strided
#: sample).  2 KiB is enough to separate the gate's populations — solver
#: mantissa planes measure ~7.9 bits and the compressible planes <= 6.6 —
#: and the histogram cost is what bounds the whole gate's overhead.
_ENTROPY_SAMPLE_BYTES = 2048


def byte_shuffle(data: np.ndarray) -> np.ndarray:
    """Transpose ``data``'s buffer into byte planes.

    Returns a C-contiguous ``(itemsize, n)`` uint8 array: row ``i`` holds
    byte ``i`` (little-endian significance order) of every element.  This is
    the Blosc "shuffle" filter; :func:`byte_unshuffle` is its exact inverse.
    """
    arr = np.ascontiguousarray(data)
    itemsize = arr.dtype.itemsize
    flat = arr.reshape(-1).view(np.uint8)
    if itemsize == 1:
        return flat.reshape(1, -1)
    return np.ascontiguousarray(flat.reshape(-1, itemsize).T)


def byte_unshuffle(planes: np.ndarray, dtype, shape) -> np.ndarray:
    """Invert :func:`byte_shuffle`: ``(itemsize, n)`` planes back to an array."""
    dtype = np.dtype(dtype)
    interleaved = np.ascontiguousarray(planes.T)
    return interleaved.reshape(-1).view(dtype).reshape(shape)


def assemble_planes(plane_buffers, dtype, shape) -> np.ndarray:
    """Rebuild an array from per-plane byte buffers (decode-side unshuffle).

    ``plane_buffers`` holds ``itemsize`` equal-length byte buffers, plane 0
    first.  Writes each plane straight into its interleaved column, so the
    transpose is the only copy the decode path pays; the returned array owns
    its memory and is writable.
    """
    dtype = np.dtype(dtype)
    itemsize = dtype.itemsize
    if len(plane_buffers) != itemsize:
        raise ValueError(
            f"expected {itemsize} byte planes for dtype {dtype}, "
            f"got {len(plane_buffers)}"
        )
    count = len(plane_buffers[0])
    out = np.empty((count, itemsize), dtype=np.uint8)
    for index, plane in enumerate(plane_buffers):
        out[:, index] = np.frombuffer(plane, dtype=np.uint8)
    return out.reshape(-1).view(dtype).reshape(shape)


def plane_entropy(buf) -> float:
    """Shannon entropy (bits/byte) of a uint8 buffer, from a prefix sample.

    The sample is a contiguous prefix rather than a stride: ``bincount`` on
    a strided view costs ~3x the contiguous pass, and the byte planes this
    gates are statistically homogeneous along the vector (a mantissa plane
    is noise everywhere, an exponent plane is runs everywhere), so the
    prefix separates the gate's populations just as well.
    """
    if isinstance(buf, np.ndarray):
        flat = buf.reshape(-1)
    else:
        flat = np.frombuffer(buf, dtype=np.uint8)
    if flat.size == 0:
        return 0.0
    if flat.size > _ENTROPY_SAMPLE_BYTES:
        flat = flat[:_ENTROPY_SAMPLE_BYTES]
    counts = np.bincount(flat, minlength=256)
    probabilities = counts[counts > 0] / flat.size
    return float(-(probabilities * np.log2(probabilities)).sum())


def code_planes(unsigned_codes: np.ndarray) -> list:
    """Byte planes of a uint64 code stream, trailing all-zero planes dropped.

    The lossy code path's counterpart of :func:`byte_shuffle`: zigzag-mapped
    quantization residuals rarely exceed a few bytes of magnitude, so only
    the ``k = ceil(max_bit_width / 8)`` low planes carry information.  Plane
    0 (low mantissa byte of the residual) is near-uniform and gets raw-stored
    by the entropy gate; the upper planes collapse under DEFLATE — smaller
    *and* faster than bit-packing the same codes.  At least one plane is
    always returned so a decoder can recover the element count.
    """
    codes = np.ascontiguousarray(unsigned_codes, dtype=np.uint64)
    if codes.size == 0:
        return [np.zeros(0, dtype=np.uint8)]
    width = int(codes.max()).bit_length()
    k = max(1, (width + 7) // 8)
    # Transpose only the k live columns — the dropped planes are all zero
    # (little-endian), so copying them first would be pure waste.
    interleaved = codes.view(np.uint8).reshape(-1, 8)[:, :k]
    planes = np.ascontiguousarray(interleaved.T)
    return [planes[i] for i in range(k)]


def codes_from_planes(plane_buffers, count: int) -> np.ndarray:
    """Invert :func:`code_planes` back to the uint64 code stream."""
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    out = np.zeros((count, 8), dtype=np.uint8)
    for index, plane in enumerate(plane_buffers):
        plane = np.frombuffer(plane, dtype=np.uint8)
        if plane.size != count:
            raise ValueError(
                f"code plane {index} holds {plane.size} bytes, expected {count}"
            )
        out[:, index] = plane
    return out.reshape(-1).view(np.uint64)
