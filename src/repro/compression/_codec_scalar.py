"""Pure-Python reference implementation of the v1 block-codec bit stream.

This module is the *executable specification* for the codec's block stream
(``docs/payload-format.md``): plain loops over Python integers, one code at
a time, with no NumPy bit tricks.  The vectorised and numba backends in
:mod:`repro.compression.codec` must produce byte-identical output — pinned
by ``tests/compression/test_codec_equivalence.py``.

Select it at runtime with ``REPRO_CODEC=scalar`` (or
``encode_signed(..., backend="scalar")``).  It is orders of magnitude
slower than the vector backend and exists for verification and as a
portability fallback, not for production encoding.
"""

from __future__ import annotations

import struct
from typing import List

import numpy as np

_STREAM_HEADER = struct.Struct("<QIIQ")
_MASK64 = (1 << 64) - 1


def _zigzag(value: int) -> int:
    """Map a signed 64-bit int to unsigned: 0,-1,1,-2,... -> 0,1,2,3,..."""
    return ((value << 1) ^ (value >> 63)) & _MASK64


def _unzigzag(value: int) -> int:
    """Inverse of :func:`_zigzag`."""
    return (value >> 1) ^ -(value & 1)


def encode_signed_scalar(
    codes: np.ndarray, *, block_size: int = 1024, width_cap: int = 32
) -> bytes:
    """Reference encoder; see ``codec.encode_signed`` for the contract."""
    block_size = int(block_size)
    width_cap = int(width_cap)
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    if not (1 <= width_cap <= 64):
        raise ValueError(f"width_cap must be in [1, 64], got {width_cap}")

    values = [int(c) for c in np.asarray(codes, dtype=np.int64).reshape(-1)]
    count = len(values)
    if count == 0:
        return _STREAM_HEADER.pack(0, block_size, width_cap, 0)

    # Zigzag map, then divert codes wider than the cap to the escape
    # channel, leaving a zero in the block stream.
    unsigned = [_zigzag(v) for v in values]
    escape_positions: List[int] = []
    escape_values: List[int] = []
    inline: List[int] = []
    limit = 1 << width_cap if width_cap < 64 else 1 << 64
    for position, u in enumerate(unsigned):
        if u >= limit:
            escape_positions.append(position)
            escape_values.append(u)
            inline.append(0)
        else:
            inline.append(u)

    # Pad the final partial block with zeros (they cost bits only if the
    # block already has a nonzero width).
    n_blocks = -(-count // block_size)
    inline.extend([0] * (n_blocks * block_size - count))

    # One width byte per block: the minimal bit width of its widest code.
    widths = []
    for b in range(n_blocks):
        block = inline[b * block_size : (b + 1) * block_size]
        widths.append(max(u.bit_length() for u in block))

    # Bit-pack every code LSB-first at its block's width, blocks abutting
    # with no padding between them.
    packed = bytearray()
    acc = 0
    n_bits = 0
    for b in range(n_blocks):
        w = widths[b]
        if w == 0:
            continue
        for u in inline[b * block_size : (b + 1) * block_size]:
            acc |= u << n_bits
            n_bits += w
            while n_bits >= 8:
                packed.append(acc & 0xFF)
                acc >>= 8
                n_bits -= 8
    if n_bits:
        packed.append(acc & 0xFF)

    out = bytearray()
    out += _STREAM_HEADER.pack(count, block_size, width_cap, len(escape_values))
    out += bytes(widths)
    out += packed
    for position in escape_positions:
        out += struct.pack("<Q", position)
    for u in escape_values:
        out += struct.pack("<Q", u)
    return bytes(out)


def decode_signed_scalar(buffer: bytes) -> np.ndarray:
    """Reference decoder; see ``codec.decode_signed`` for the contract."""
    from repro.compression.codec import CodecFormatError

    count, block_size, width_cap, n_escapes = _STREAM_HEADER.unpack_from(buffer, 0)
    offset = _STREAM_HEADER.size
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if not (1 <= width_cap <= 64):
        raise CodecFormatError(f"corrupt block stream: width cap {width_cap}")
    if block_size < 1:
        raise CodecFormatError(f"corrupt block stream: block size {block_size}")

    n_blocks = -(-count // block_size)
    widths = list(buffer[offset : offset + n_blocks])
    offset += n_blocks

    # Bit-unpack: mirror image of the encoder's byte accumulator.
    unsigned: List[int] = []
    acc = 0
    n_avail = 0
    cursor = offset
    for b in range(n_blocks):
        w = widths[b]
        if w == 0:
            unsigned.extend([0] * block_size)
            continue
        mask = (1 << w) - 1
        for _ in range(block_size):
            while n_avail < w:
                acc |= buffer[cursor] << n_avail
                cursor += 1
                n_avail += 8
            unsigned.append(acc & mask)
            acc >>= w
            n_avail -= w
    total_bits = sum(w * block_size for w in widths)
    offset += (total_bits + 7) // 8
    unsigned = unsigned[:count]

    for i in range(n_escapes):
        (position,) = struct.unpack_from("<Q", buffer, offset + 8 * i)
        (value,) = struct.unpack_from("<Q", buffer, offset + 8 * (n_escapes + i))
        if position >= count:
            raise CodecFormatError(
                f"corrupt block stream: escape position {position} "
                f">= code count {count}"
            )
        unsigned[position] = value

    return np.asarray([_unzigzag(u) for u in unsigned], dtype=np.int64)
