"""ZFP-like transform-based, error-bounded lossy compressor.

ZFP (Lindstrom, 2014) partitions data into fixed-size blocks, applies a
near-orthogonal block transform and encodes the transform coefficients by bit
planes.  This reproduction keeps the same structure at reduced complexity:

1. split the flattened array into blocks of 64 values (the 4x4x4 block size
   of real ZFP),
2. apply an orthonormal DCT-II per block (so coefficient quantization error
   maps to reconstruction error with a known ``sqrt(block)`` factor),
3. quantize coefficients with an error-bounded step chosen so the
   *reconstruction* error respects the requested absolute bound,
4. zigzag + bit-pack + DEFLATE the coefficient codes.

Pointwise-relative bounds are supported through the same logarithmic
transform the SZ-like compressor uses, so the checkpointing layer can swap
SZ-like and ZFP-like compressors freely (the compressor-family ablation in
``benchmarks/test_bench_ablation_compressors.py``).
"""

from __future__ import annotations

import zlib

import numpy as np
from scipy.fft import dct, idct

from repro.compression.base import CompressedBlob, Compressor, register_compressor
from repro.compression.encoding import (
    pack_sections,
    pack_unsigned,
    unpack_sections,
    unpack_unsigned,
    zigzag_decode,
    zigzag_encode,
)
from repro.compression.errorbounds import ErrorBound, ErrorBoundMode
from repro.compression.quantization import QuantizationOverflow, quantize_absolute
from repro.compression.relative import PointwiseRelativeTransform

__all__ = ["ZFPCompressor"]


class ZFPCompressor(Compressor):
    """Block-transform lossy compressor with a guaranteed error bound.

    Parameters
    ----------
    error_bound:
        :class:`ErrorBound` or a float interpreted as a pointwise relative
        bound (for symmetry with :class:`~repro.compression.sz.SZCompressor`).
    block_size:
        Number of values per transform block (default 64 = 4x4x4).
    zlib_level:
        DEFLATE effort for the entropy stage.
    """

    name = "zfp"
    lossless = False

    def __init__(
        self,
        error_bound: "ErrorBound | float" = 1e-4,
        *,
        block_size: int = 64,
        zlib_level: int = 6,
    ) -> None:
        super().__init__()
        if not isinstance(error_bound, ErrorBound):
            error_bound = ErrorBound.pointwise_relative(float(error_bound))
        block_size = int(block_size)
        if block_size < 2:
            raise ValueError(f"block_size must be >= 2, got {block_size}")
        self.error_bound = error_bound
        self.block_size = block_size
        self.zlib_level = int(zlib_level)

    def with_error_bound(self, error_bound: "ErrorBound | float") -> "ZFPCompressor":
        """Return a copy of this compressor with a different error bound."""
        return ZFPCompressor(
            error_bound, block_size=self.block_size, zlib_level=self.zlib_level
        )

    # ------------------------------------------------------------------
    def _compress_array(self, data: np.ndarray) -> CompressedBlob:
        flat = np.ascontiguousarray(data, dtype=np.float64).reshape(-1)
        meta = {"error_bound": self.error_bound.describe(), "block_size": self.block_size}
        if self.error_bound.mode is ErrorBoundMode.POINTWISE_RELATIVE:
            transform = PointwiseRelativeTransform.forward(flat, self.error_bound.value)
            inner, scheme = self._compress_values(transform.log_values, transform.log_bound)
            if scheme == "raw":
                payload = self._raw_fallback(flat)
                meta["scheme"] = "raw"
            else:
                neg = np.packbits(transform.negative_mask.astype(np.uint8)).tobytes()
                zero = np.packbits(transform.zero_mask.astype(np.uint8)).tobytes()
                count = np.asarray([flat.size], dtype=np.int64).tobytes()
                payload = zlib.compress(
                    pack_sections([count, inner, neg, zero]), self.zlib_level
                )
                meta["scheme"] = "pw_rel"
        else:
            bound = self.error_bound.absolute_for(flat)
            payload, scheme = self._compress_values(flat, bound)
            if scheme == "raw":
                payload = self._raw_fallback(flat)
            meta["scheme"] = scheme
        return CompressedBlob(
            payload=payload,
            shape=tuple(data.shape),
            dtype=np.dtype(data.dtype).str,
            compressor=self.name,
            meta=meta,
        )

    def _decompress_array(self, blob: CompressedBlob) -> np.ndarray:
        scheme = blob.meta.get("scheme", "abs")
        if scheme == "raw":
            flat = np.frombuffer(zlib.decompress(blob.payload), dtype=np.float64).copy()
        elif scheme == "pw_rel":
            frame = zlib.decompress(blob.payload)
            count_b, inner, neg_b, zero_b = unpack_sections(frame)
            count = int(np.frombuffer(count_b, dtype=np.int64)[0])
            log_recon = self._decompress_values(inner)
            negative_mask = np.unpackbits(
                np.frombuffer(neg_b, dtype=np.uint8), count=count
            ).astype(bool)
            zero_mask = np.unpackbits(
                np.frombuffer(zero_b, dtype=np.uint8), count=count
            ).astype(bool)
            transform = PointwiseRelativeTransform(
                log_values=np.empty(int((~zero_mask).sum()), dtype=np.float64),
                negative_mask=negative_mask,
                zero_mask=zero_mask,
                log_bound=0.0,
            )
            flat = transform.backward(log_recon)
        else:
            flat = self._decompress_values(zlib.decompress(blob.payload), precompressed=True)
        return flat.astype(np.dtype(blob.dtype), copy=False).reshape(blob.shape)

    # -- block transform core -------------------------------------------
    def _compress_values(self, values: np.ndarray, bound: float) -> "tuple[bytes, str]":
        n = values.size
        block = self.block_size
        pad = (-n) % block
        padded = np.pad(values, (0, pad), mode="edge") if pad else values
        blocks = padded.reshape(-1, block)
        coeffs = dct(blocks, axis=1, norm="ortho")
        # Orthonormal transform: an l-inf coefficient error of eps gives an
        # l-2 (hence l-inf) reconstruction error of at most sqrt(block)*eps,
        # so quantize with bound / sqrt(block).
        coeff_bound = bound / np.sqrt(block)
        try:
            quantized = quantize_absolute(coeffs.reshape(-1), coeff_bound)
        except QuantizationOverflow:
            return b"", "raw"
        packed = pack_unsigned(zigzag_encode(quantized.codes))
        header = np.asarray([quantized.quantum], dtype=np.float64).tobytes()
        sizes = np.asarray([n, block], dtype=np.int64).tobytes()
        frame = pack_sections([header, sizes, packed])
        return zlib.compress(frame, self.zlib_level), "zfp"

    def _decompress_values(self, payload: bytes, *, precompressed: bool = False) -> np.ndarray:
        # The abs path hands us the already-decompressed zlib frame
        # (precompressed=True); the pw_rel path hands the raw zlib stream.
        frame = payload if precompressed else zlib.decompress(payload)
        header, sizes, packed = unpack_sections(frame)
        quantum = float(np.frombuffer(header, dtype=np.float64)[0])
        n, block = (int(v) for v in np.frombuffer(sizes, dtype=np.int64))
        codes_unsigned, _ = unpack_unsigned(packed)
        codes = zigzag_decode(codes_unsigned)
        coeffs = codes.astype(np.float64).reshape(-1, block) * quantum
        values = idct(coeffs, axis=1, norm="ortho").reshape(-1)
        return values[:n]

    def _raw_fallback(self, flat: np.ndarray) -> bytes:
        return zlib.compress(flat.astype(np.float64).tobytes(), self.zlib_level)


def _make_zfp(**kwargs) -> ZFPCompressor:
    return ZFPCompressor(**kwargs)


register_compressor("zfp", _make_zfp)
