"""ZFP-like transform-based, error-bounded lossy compressor.

ZFP (Lindstrom, 2014) partitions data into fixed-size blocks, applies a
near-orthogonal block transform and encodes the transform coefficients by bit
planes.  This reproduction keeps the same structure at reduced complexity:

1. split the flattened array into blocks of 64 values (the 4x4x4 block size
   of real ZFP),
2. apply an orthonormal DCT-II per block (so coefficient quantization error
   maps to reconstruction error with a known ``sqrt(block)`` factor),
3. quantize coefficients with an error-bounded step chosen so the
   *reconstruction* error respects the requested absolute bound,
4. encode the coefficient codes with the versioned block codec
   (:mod:`repro.compression.codec`): per-block minimal bit widths, an
   outlier escape channel, and exactly one DEFLATE pass per payload.

Pointwise-relative bounds are supported through the same logarithmic
transform the SZ-like compressor uses, so the checkpointing layer can swap
SZ-like and ZFP-like compressors freely (the compressor-family ablation in
``benchmarks/test_bench_ablation_compressors.py``).  Payloads carry
``format_version`` in their metadata; legacy payloads (no ``format_version``)
decode through the pre-codec paths, including the old nested-DEFLATE
pointwise-relative frame.
"""

from __future__ import annotations

import zlib
from typing import List, Optional

import numpy as np
from scipy.fft import dct, idct

from repro.compression.base import CompressedBlob, Compressor, register_compressor
from repro.compression.codec import (
    FORMAT_VERSION,
    decode_frame,
    decode_signed,
    encode_frame,
    encode_signed,
)
from repro.compression.encoding import (
    unpack_sections,
    unpack_unsigned,
    zigzag_decode,
)
from repro.compression.errorbounds import ErrorBound, ErrorBoundMode
from repro.compression.quantization import QuantizationOverflow, quantize_absolute
from repro.compression.relative import (
    PointwiseRelativeTransform,
    pw_rel_sections,
    reconstruct_from_masks,
)

__all__ = ["ZFPCompressor"]


class ZFPCompressor(Compressor):
    """Block-transform lossy compressor with a guaranteed error bound.

    Parameters
    ----------
    error_bound:
        :class:`ErrorBound` or a float interpreted as a pointwise relative
        bound (for symmetry with :class:`~repro.compression.sz.SZCompressor`).
    block_size:
        Number of values per transform block (default 64 = 4x4x4).
    zlib_level:
        DEFLATE effort for the (single) entropy stage.
    """

    name = "zfp"
    lossless = False

    def __init__(
        self,
        error_bound: "ErrorBound | float" = 1e-4,
        *,
        block_size: int = 64,
        zlib_level: int = 6,
    ) -> None:
        super().__init__()
        if not isinstance(error_bound, ErrorBound):
            error_bound = ErrorBound.pointwise_relative(float(error_bound))
        block_size = int(block_size)
        if block_size < 2:
            raise ValueError(f"block_size must be >= 2, got {block_size}")
        self.error_bound = error_bound
        self.block_size = block_size
        self.zlib_level = int(zlib_level)

    def with_error_bound(self, error_bound: "ErrorBound | float") -> "ZFPCompressor":
        """Return a copy of this compressor with a different error bound."""
        return ZFPCompressor(
            error_bound, block_size=self.block_size, zlib_level=self.zlib_level
        )

    # ------------------------------------------------------------------
    def _compress_array(self, data: np.ndarray) -> CompressedBlob:
        flat = np.ascontiguousarray(data, dtype=np.float64).reshape(-1)
        meta = {
            "error_bound": self.error_bound.describe(),
            "block_size": self.block_size,
            "format_version": FORMAT_VERSION,
        }
        if self.error_bound.mode is ErrorBoundMode.POINTWISE_RELATIVE:
            transform = PointwiseRelativeTransform.forward(flat, self.error_bound.value)
            inner = self._transform_sections(transform.log_values, transform.log_bound)
            if inner is None:
                payload = self._raw_fallback(flat)
                meta["scheme"] = "raw"
            else:
                sections = pw_rel_sections(transform, inner, flat.size)
                payload = encode_frame(sections, level=self.zlib_level)
                meta["scheme"] = "pw_rel"
        else:
            bound = self.error_bound.absolute_for(flat)
            sections = self._transform_sections(flat, bound)
            if sections is None:
                payload = self._raw_fallback(flat)
                meta["scheme"] = "raw"
            else:
                payload = encode_frame(sections, level=self.zlib_level)
                meta["scheme"] = "zfp"
        return CompressedBlob(
            payload=payload,
            shape=tuple(data.shape),
            dtype=np.dtype(data.dtype).str,
            compressor=self.name,
            meta=meta,
        )

    def _decompress_array(self, blob: CompressedBlob) -> np.ndarray:
        scheme = blob.meta.get("scheme", "abs")
        if scheme == "raw":
            flat = np.frombuffer(zlib.decompress(blob.payload), dtype=np.float64).copy()
        elif blob.format_version >= 1:
            sections = decode_frame(blob.payload)
            if scheme == "pw_rel":
                count = int(np.frombuffer(sections[0], dtype=np.int64)[0])
                log_recon = self._decode_transform_sections(sections[1:4])
                flat = reconstruct_from_masks(log_recon, sections[4], sections[5], count)
            else:
                flat = self._decode_transform_sections(sections)
        elif scheme == "pw_rel":
            frame = zlib.decompress(blob.payload)
            count_b, inner, neg_b, zero_b = unpack_sections(frame)
            count = int(np.frombuffer(count_b, dtype=np.int64)[0])
            log_recon = self._legacy_decompress_values(inner)
            flat = reconstruct_from_masks(log_recon, neg_b, zero_b, count)
        else:
            flat = self._legacy_decompress_values(
                zlib.decompress(blob.payload), precompressed=True
            )
        return flat.astype(np.dtype(blob.dtype), copy=False).reshape(blob.shape)

    # -- block transform core -------------------------------------------
    def _transform_sections(
        self, values: np.ndarray, bound: float
    ) -> Optional[List[bytes]]:
        """DCT + quantize ``values``; None when the bound needs raw fallback."""
        n = values.size
        block = self.block_size
        pad = (-n) % block
        padded = np.pad(values, (0, pad), mode="edge") if pad else values
        blocks = padded.reshape(-1, block)
        coeffs = dct(blocks, axis=1, norm="ortho")
        # Orthonormal transform: an l-inf coefficient error of eps gives an
        # l-2 (hence l-inf) reconstruction error of at most sqrt(block)*eps,
        # so quantize with bound / sqrt(block).
        coeff_bound = bound / np.sqrt(block)
        if coeff_bound <= 0.0:  # resolved bound underflowed (denormal-scale data)
            return None
        try:
            quantized = quantize_absolute(coeffs.reshape(-1), coeff_bound)
        except QuantizationOverflow:
            return None
        return [
            np.asarray([quantized.quantum], dtype=np.float64).tobytes(),
            np.asarray([n, block], dtype=np.int64).tobytes(),
            encode_signed(quantized.codes),
        ]

    def _decode_transform_sections(self, sections: List[bytes]) -> np.ndarray:
        header, sizes, packed = sections
        quantum = float(np.frombuffer(header, dtype=np.float64)[0])
        n, block = (int(v) for v in np.frombuffer(sizes, dtype=np.int64))
        codes = decode_signed(packed)
        coeffs = codes.astype(np.float64).reshape(-1, block) * quantum
        values = idct(coeffs, axis=1, norm="ortho").reshape(-1)
        return values[:n]

    # -- legacy (format version 0) decode path ---------------------------
    def _legacy_decompress_values(
        self, payload: bytes, *, precompressed: bool = False
    ) -> np.ndarray:
        # The legacy abs path hands us the already-decompressed zlib frame
        # (precompressed=True); the legacy pw_rel path hands the raw *nested*
        # zlib stream its frame carried as a section.
        frame = payload if precompressed else zlib.decompress(payload)
        header, sizes, packed = unpack_sections(frame)
        quantum = float(np.frombuffer(header, dtype=np.float64)[0])
        n, block = (int(v) for v in np.frombuffer(sizes, dtype=np.int64))
        codes_unsigned, _ = unpack_unsigned(packed)
        codes = zigzag_decode(codes_unsigned)
        coeffs = codes.astype(np.float64).reshape(-1, block) * quantum
        values = idct(coeffs, axis=1, norm="ortho").reshape(-1)
        return values[:n]

    def _raw_fallback(self, flat: np.ndarray) -> bytes:
        return zlib.compress(flat.astype(np.float64).tobytes(), self.zlib_level)


def _make_zfp(**kwargs) -> ZFPCompressor:
    return ZFPCompressor(**kwargs)


register_compressor("zfp", _make_zfp)
