"""Optional numba JIT kernels for the v1 block-codec bit stream.

Imported lazily by :mod:`repro.compression.codec`; when numba is not
installed :data:`HAVE_NUMBA` is ``False`` and the dispatcher falls back to
the vector backend.  The kernels pack/unpack bit-for-bit the same stream as
the other backends (pinned by ``tests/compression/test_codec_equivalence.py``,
exercised with numba in CI only — the default container does not ship it).
"""

from __future__ import annotations

import numpy as np

try:
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - depends on environment
    HAVE_NUMBA = False

    def njit(*args, **kwargs):  # pragma: no cover - never called without numba
        raise ImportError("numba is not installed")


if HAVE_NUMBA:

    @njit(cache=True, nogil=True)
    def _pack_kernel(padded, widths, bit_offsets, block_size, out):
        for b in range(widths.shape[0]):
            w = int(widths[b])
            if w == 0:
                continue
            pos = int(bit_offsets[b])
            base = b * block_size
            for i in range(block_size):
                v = padded[base + i]
                for k in range(w):
                    if (v >> np.uint64(k)) & np.uint64(1):
                        out[pos >> 3] |= np.uint8(1) << np.uint8(pos & 7)
                    pos += 1

    @njit(cache=True, nogil=True)
    def _unpack_kernel(raw, widths, bit_offsets, block_size, blocks):
        for b in range(widths.shape[0]):
            w = int(widths[b])
            if w == 0:
                continue
            pos = int(bit_offsets[b])
            for i in range(block_size):
                v = np.uint64(0)
                for k in range(w):
                    if (raw[pos >> 3] >> (pos & 7)) & 1:
                        v |= np.uint64(1) << np.uint64(k)
                    pos += 1
                blocks[b, i] = v


def pack_bits(padded, widths, bit_offsets, block_size):
    """Pack codes into the LSB-first bit stream; returns the packed bytes."""
    total_bits = int(bit_offsets[-1])
    out = np.zeros((total_bits + 7) // 8, dtype=np.uint8)
    _pack_kernel(padded, widths, bit_offsets, int(block_size), out)
    return out.tobytes()


def unpack_bits(buffer, offset, widths, bit_offsets, block_size, n_blocks):
    """Unpack the bit stream back into an ``(n_blocks, block_size)`` array."""
    total_bits = int(bit_offsets[-1])
    nbytes = (total_bits + 7) // 8
    raw = np.frombuffer(buffer, dtype=np.uint8, count=nbytes, offset=offset)
    blocks = np.zeros((int(n_blocks), int(block_size)), dtype=np.uint64)
    _unpack_kernel(raw, widths, bit_offsets, int(block_size), blocks)
    return blocks
