"""Async-overlap study: checkpoint-write overhead with a drained I/O channel.

A scenario family beyond the paper: Section 5.4 (and the engine's default
``blocking`` write mode) charges every checkpoint write as a stop-the-world
stall, which is exactly the cost lossy compression exists to shrink.  Real
multilevel FT stacks hide most of it by draining the storage write
asynchronously while compute continues.  This experiment sweeps ``write_mode
x checkpoint_costing`` for each checkpointing scheme under injected failures
and reports the fault-tolerance overhead reduction the overlap buys — i.e.
how much of lossy checkpointing's advantage survives once traditional
checkpoints stop blocking too.

Run it from the shell as ``python -m repro.campaign --preset
async-vs-blocking`` (raw cells) or via :func:`run_async_overlap` here
(aggregated reduction table); ``examples/async_vs_blocking_study.py`` is the
single-interval engine-level variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.campaign.executor import run_campaign
from repro.campaign.spec import RunSpec
from repro.engine.scenario import WRITE_MODES
from repro.experiments.config import ExperimentConfig, SMALL_CONFIG, campaign_fields
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table

__all__ = [
    "AsyncOverlapResult",
    "async_overlap_cells",
    "run_async_overlap",
    "async_overlap_table",
]

STUDY_SCHEMES = ("traditional", "lossless", "lossy")


@dataclass
class AsyncOverlapResult:
    """Mean overhead fraction per (scheme, write mode, costing) coordinate."""

    method: str
    repetitions: int
    #: ``(scheme, write_mode, checkpoint_costing) -> mean overhead fraction``.
    overhead: Dict[Tuple[str, str, str], float] = field(default_factory=dict)
    #: Mean async I/O-channel drain seconds per (scheme, costing).
    drain_seconds: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: Mean dirty (failure-interrupted) drains per async run.
    dirty_checkpoints: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def reduction(self, scheme: str, costing: str = "measured") -> float:
        """Fractional overhead reduction of async vs blocking for a scheme."""
        blocking = self.overhead[(scheme, "blocking", costing)]
        asynchronous = self.overhead[(scheme, "async", costing)]
        if blocking == 0.0:
            return 0.0
        return (blocking - asynchronous) / blocking


def async_overlap_cells(
    config: ExperimentConfig,
    method: str = "jacobi",
    *,
    schemes: Sequence[str] = STUDY_SCHEMES,
    costings: Sequence[str] = ("measured", "modeled"),
    repetitions: int = 3,
) -> List[RunSpec]:
    """The study's campaign cells: write_mode x costing x scheme x repetition.

    Seeds are paired on purpose: the async and blocking cells of one
    (scheme, costing, repetition) coordinate share a failure seed, so the
    comparison is same-failure-stream rather than two independent draws.
    """
    cells: List[RunSpec] = []
    for scheme in schemes:
        for costing in costings:
            for rep in range(repetitions):
                seed = derive_seed(
                    config.seed, "async-overlap", method, scheme, costing, rep
                )
                for mode in WRITE_MODES:
                    cells.append(
                        RunSpec(
                            kind="ft",
                            scheme=scheme,
                            error_bound=config.error_bound,
                            adaptive=(scheme == "lossy" and method == "gmres"),
                            mtti_seconds=config.mtti_seconds,
                            checkpoint_costing=costing,
                            write_mode=mode,
                            repetition=rep,
                            seed=seed,
                            **campaign_fields(config, method),
                        )
                    )
    return cells


def run_async_overlap(
    config: ExperimentConfig = SMALL_CONFIG,
    method: str = "jacobi",
    *,
    schemes: Sequence[str] = STUDY_SCHEMES,
    costings: Sequence[str] = ("measured", "modeled"),
    repetitions: int = 3,
    n_workers: int = 1,
    cache=None,
) -> AsyncOverlapResult:
    """Execute the sweep and aggregate the per-coordinate mean overheads."""
    cells = async_overlap_cells(
        config, method, schemes=schemes, costings=costings, repetitions=repetitions
    )
    outcome = run_campaign(cells, n_workers=n_workers, cache=cache)
    result = AsyncOverlapResult(method=method, repetitions=int(repetitions))
    overheads: Dict[Tuple[str, str, str], List[float]] = {}
    drains: Dict[Tuple[str, str], List[float]] = {}
    dirty: Dict[Tuple[str, str], List[float]] = {}
    for cell, cell_result in zip(outcome.cells(), outcome.results()):
        key = (cell.scheme, cell.write_mode, cell.checkpoint_costing)
        overheads.setdefault(key, []).append(float(cell_result["overhead_fraction"]))
        if cell.write_mode == "async":
            info = cell_result["report"]["info"]
            drains.setdefault((cell.scheme, cell.checkpoint_costing), []).append(
                float(info.get("io_drain_seconds", 0.0))
            )
            dirty.setdefault((cell.scheme, cell.checkpoint_costing), []).append(
                float(info.get("num_dirty_checkpoints", 0))
            )
    result.overhead = {key: float(np.mean(v)) for key, v in overheads.items()}
    result.drain_seconds = {key: float(np.mean(v)) for key, v in drains.items()}
    result.dirty_checkpoints = {key: float(np.mean(v)) for key, v in dirty.items()}
    return result


def async_overlap_table(result: AsyncOverlapResult, *, costing: str = "measured") -> str:
    """Render the per-scheme overhead reduction for one costing mode."""
    rows = []
    schemes = sorted({scheme for scheme, _, c in result.overhead if c == costing})
    for scheme in schemes:
        blocking = result.overhead[(scheme, "blocking", costing)]
        asynchronous = result.overhead[(scheme, "async", costing)]
        rows.append(
            [
                scheme,
                f"{100 * blocking:.1f}%",
                f"{100 * asynchronous:.1f}%",
                f"{100 * result.reduction(scheme, costing):.1f}%",
                f"{result.drain_seconds.get((scheme, costing), 0.0):.0f}",
                f"{result.dirty_checkpoints.get((scheme, costing), 0.0):.1f}",
            ]
        )
    return format_table(
        ["scheme", "blocking ovh", "async ovh", "reduction", "drain (s)", "dirty"],
        rows,
        title=(
            f"Async overlap study — {result.method}, {costing} costing, "
            f"{result.repetitions} repetition(s)"
        ),
    )
