"""Figure 9: Jacobi residual trajectories with 0, 1 and 2 lossy restarts.

The paper overlays three example executions of the Jacobi method: the
failure-free run, a run with one lossy recovery and a run with two lossy
recoveries, showing that after each lossy restart the residual immediately
returns to the failure-free trajectory (no extra iterations).  The
reproduction constructs exactly those traces: the iterate at the chosen
restart iterations is compressed and decompressed with the SZ-like compressor
and the solver continues from the perturbed vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.campaign.executor import run_campaign
from repro.campaign.spec import RunSpec
from repro.compression.base import Compressor
from repro.experiments.config import ExperimentConfig, SMALL_CONFIG, campaign_fields
from repro.utils.tables import format_table

__all__ = ["Fig9Result", "fig9_cells", "run_fig9", "fig9_table", "solve_with_restarts"]


@dataclass
class Fig9Result:
    """Residual-vs-iteration traces for 0, 1 and 2 lossy restarts."""

    baseline_iterations: int
    #: label -> list of (iteration, residual norm).
    traces: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    restart_iterations: Dict[str, List[int]] = field(default_factory=dict)
    total_iterations: Dict[str, int] = field(default_factory=dict)

    def extra_iterations(self, label: str) -> int:
        """Extra iterations of a trace relative to the failure-free baseline."""
        return self.total_iterations[label] - self.baseline_iterations


def solve_with_restarts(
    solver, b: np.ndarray, compressor: Compressor, restart_points: Sequence[int]
) -> Tuple[List[Tuple[int, float]], int]:
    """Run the solver, injecting a lossy restart at each point in order."""
    trace: List[Tuple[int, float]] = []
    restart_points = sorted(int(p) for p in restart_points)
    offset = 0
    x_current: Optional[np.ndarray] = None
    remaining = list(restart_points)

    while True:
        target = remaining[0] if remaining else None
        snapshots: Dict[int, np.ndarray] = {}

        def capture(state) -> None:
            trace.append((state.iteration, state.residual_norm))
            if target is not None and state.iteration == target:
                snapshots[state.iteration] = state.x

        max_iter = None if target is None else max(1, target - offset)
        result = solver.solve(
            b, x0=x_current, callback=capture, iteration_offset=offset, max_iter=max_iter
        )
        if target is None or result.converged:
            return trace, offset + result.iterations
        # Lossy restart: compress/decompress the iterate reached at `target`.
        x_at_target = snapshots.get(target)
        if x_at_target is None:
            # The solver converged before reaching the restart point.
            return trace, offset + result.iterations
        blob = compressor.compress(x_at_target)
        x_current = np.asarray(compressor.decompress(blob), dtype=np.float64)
        offset = target
        remaining.pop(0)


#: The three traces of Figure 9 and their lossy-restart fractions.
FIG9_LABELS = ("no failure", "1 lossy restart", "2 lossy restarts")


def fig9_cells(
    config: ExperimentConfig,
    *,
    restart_fractions_one: Sequence[float] = (0.45,),
    restart_fractions_two: Sequence[float] = (0.3, 0.65),
    method: str = "jacobi",
) -> List[RunSpec]:
    """The Figure 9 campaign: one trajectory cell per trace."""
    fractions_by_label = {
        "no failure": (),
        "1 lossy restart": tuple(float(f) for f in restart_fractions_one),
        "2 lossy restarts": tuple(float(f) for f in restart_fractions_two),
    }
    return [
        RunSpec(
            kind="trajectory",
            scheme="lossy",
            compressor="sz",
            error_bound=config.error_bound,
            seed=config.seed,
            params={"restart_fractions": fractions_by_label[label], "label": label},
            **campaign_fields(config, method),
        )
        for label in FIG9_LABELS
    ]


def run_fig9(
    config: ExperimentConfig = SMALL_CONFIG,
    *,
    restart_fractions_one: Sequence[float] = (0.45,),
    restart_fractions_two: Sequence[float] = (0.3, 0.65),
    n_workers: int = 1,
    cache=None,
) -> Fig9Result:
    """Build the three Jacobi traces (0, 1 and 2 lossy restarts)."""
    cells = fig9_cells(
        config,
        restart_fractions_one=restart_fractions_one,
        restart_fractions_two=restart_fractions_two,
    )
    outcome = run_campaign(cells, n_workers=n_workers, cache=cache)

    result = Fig9Result(baseline_iterations=0)
    for cell, cell_result in zip(outcome.cells(), outcome.results()):
        label = str(cell.param("label"))
        result.baseline_iterations = int(cell_result["baseline_iterations"])
        result.traces[label] = [
            (int(it), float(res)) for it, res in cell_result["trace"]
        ]
        result.restart_iterations[label] = [
            int(p) for p in cell_result["restart_iterations"]
        ]
        result.total_iterations[label] = int(cell_result["total_iterations"])
    return result


def fig9_table(result: Fig9Result, *, sample_points: int = 12) -> str:
    """Render the three traces, sampled at evenly spaced iterations."""
    labels = list(result.traces)
    max_iter = max(result.total_iterations.values())
    sample_iters = np.unique(
        np.linspace(1, max_iter, min(sample_points, max_iter)).astype(int)
    )
    headers = ["iteration"] + labels
    rows = []
    for it in sample_iters:
        row = [int(it)]
        for label in labels:
            trace = result.traces[label]
            values = [res for (i, res) in trace if i <= it]
            row.append(f"{values[-1]:.3e}" if values else "-")
        rows.append(row)
    restarts = "; ".join(
        f"{label}: restarts at {result.restart_iterations[label]}"
        for label in labels
        if result.restart_iterations[label]
    )
    return format_table(
        headers,
        rows,
        title=f"Figure 9 — Jacobi residual trajectories ({restarts})",
    )
