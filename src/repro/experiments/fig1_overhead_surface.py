"""Figure 1: expected fault-tolerance overhead vs failure rate and checkpoint cost.

The paper plots Eq. (5) — the expected checkpoint/recovery overhead relative
to productive time — over failure rates from 0 to 3.5 per hour and checkpoint
times from 0 to 140 seconds, to motivate why shrinking the checkpoint matters
more as machines get larger and less reliable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.campaign.executor import run_campaign
from repro.campaign.spec import RunSpec
from repro.utils.tables import format_table

__all__ = ["Fig1Result", "fig1_cells", "run_fig1", "fig1_table"]


@dataclass
class Fig1Result:
    """The overhead surface: one row per failure rate, one column per Tckp."""

    failure_rates_per_hour: List[float]
    checkpoint_seconds: List[float]
    #: overhead_fraction[i][j] for failure rate i and checkpoint time j.
    overhead_fraction: List[List[float]] = field(default_factory=list)

    def at(self, rate_per_hour: float, tckp: float) -> float:
        """Overhead fraction at the grid point closest to the given values."""
        i = int(np.argmin(np.abs(np.asarray(self.failure_rates_per_hour) - rate_per_hour)))
        j = int(np.argmin(np.abs(np.asarray(self.checkpoint_seconds) - tckp)))
        return self.overhead_fraction[i][j]


def fig1_cells(
    failure_rates_per_hour: Sequence[float],
    checkpoint_seconds: Sequence[float],
) -> List[RunSpec]:
    """The campaign cells of Figure 1: one Eq. (5) evaluation per grid point."""
    return [
        RunSpec(
            kind="model",
            scheme="traditional",
            params={"lam": float(rate) / 3600.0, "tckp": float(tckp)},
        )
        for rate in failure_rates_per_hour
        for tckp in checkpoint_seconds
    ]


def run_fig1(
    *,
    failure_rates_per_hour: Sequence[float] = (0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5),
    checkpoint_seconds: Sequence[float] = (10, 20, 40, 60, 80, 100, 120, 140),
    n_workers: int = 1,
    cache=None,
) -> Fig1Result:
    """Evaluate Eq. (5) on the requested grid of (failure rate, Tckp)."""
    result = Fig1Result(
        failure_rates_per_hour=[float(r) for r in failure_rates_per_hour],
        checkpoint_seconds=[float(t) for t in checkpoint_seconds],
    )
    cells = fig1_cells(result.failure_rates_per_hour, result.checkpoint_seconds)
    outcome = run_campaign(cells, n_workers=n_workers, cache=cache)
    values = iter(outcome.results())
    for _ in result.failure_rates_per_hour:
        result.overhead_fraction.append(
            [float(next(values)["overhead_fraction"]) for _ in result.checkpoint_seconds]
        )
    return result


def fig1_table(result: Fig1Result) -> str:
    """Render the overhead surface as a text table (percent)."""
    headers = ["failures/hour"] + [f"Tckp={t:g}s" for t in result.checkpoint_seconds]
    rows = []
    for rate, row in zip(result.failure_rates_per_hour, result.overhead_fraction):
        rows.append([rate] + [f"{100 * v:.1f}%" for v in row])
    return format_table(
        headers,
        rows,
        title="Figure 1 — expected fault tolerance overhead (Eq. 5)",
    )
