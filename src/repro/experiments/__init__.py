"""Experiment harness: one module per table/figure of the paper's evaluation.

Every experiment follows the same pattern since the campaign refactor: a
``*_cells`` function expresses the figure as a list of independent campaign
cells (see :mod:`repro.campaign`), the ``run_*`` function executes them
through :func:`repro.campaign.executor.run_campaign` (accepting ``n_workers``
and ``cache`` so figures parallelise and memoise on disk) and post-processes
the cell results into a plain dataclass, and a ``*_table`` helper renders the
text table printed by the ``examples``/benchmark harness.  The mapping from
paper artefact to module is listed in DESIGN.md's per-experiment index and in
EXPERIMENTS.md.
"""

from repro.experiments.config import (
    ExperimentConfig,
    SMALL_CONFIG,
    DEFAULT_CONFIG,
    campaign_fields,
    method_solver,
    method_problem,
)
from repro.experiments.fig1_overhead_surface import run_fig1, fig1_table, fig1_cells
from repro.experiments.fig2_cg_extra_iterations import run_fig2, fig2_table, fig2_cells
from repro.experiments.fig3_kkt_scaling import run_fig3, fig3_table, fig3_cells
from repro.experiments.table3_checkpoint_sizes import run_table3, table3_table, table3_cells
from repro.experiments.fig456_ckpt_recovery_time import run_fig456, fig456_table, fig456_cells
from repro.experiments.fig7_expected_overhead import run_fig7, fig7_table, fig7_cells
from repro.experiments.fig8_convergence_iterations import run_fig8, fig8_table, fig8_cells
from repro.experiments.fig9_jacobi_trajectories import run_fig9, fig9_table, fig9_cells
from repro.experiments.fig10_experimental_vs_expected import run_fig10, fig10_table, fig10_cells
from repro.experiments.async_overlap import (
    run_async_overlap,
    async_overlap_table,
    async_overlap_cells,
)

__all__ = [
    "ExperimentConfig",
    "SMALL_CONFIG",
    "DEFAULT_CONFIG",
    "campaign_fields",
    "method_solver",
    "method_problem",
    "run_fig1",
    "fig1_table",
    "fig1_cells",
    "run_fig2",
    "fig2_table",
    "fig2_cells",
    "run_fig3",
    "fig3_table",
    "fig3_cells",
    "run_table3",
    "table3_table",
    "table3_cells",
    "run_fig456",
    "fig456_table",
    "fig456_cells",
    "run_fig7",
    "fig7_table",
    "fig7_cells",
    "run_fig8",
    "fig8_table",
    "fig8_cells",
    "run_fig9",
    "fig9_table",
    "fig9_cells",
    "run_fig10",
    "fig10_table",
    "fig10_cells",
    "run_async_overlap",
    "async_overlap_table",
    "async_overlap_cells",
]
