"""Experiment harness: one module per table/figure of the paper's evaluation.

Every experiment follows the same pattern: a ``run_*`` function returns a
plain dataclass/dict result that the benchmarks assert on, and a ``*_table``
(or ``format_*``) helper renders it as the text table printed by the
``examples``/benchmark harness.  The mapping from paper artefact to module is
listed in DESIGN.md's per-experiment index and in EXPERIMENTS.md.
"""

from repro.experiments.config import (
    ExperimentConfig,
    SMALL_CONFIG,
    DEFAULT_CONFIG,
    method_solver,
    method_problem,
)
from repro.experiments.fig1_overhead_surface import run_fig1, fig1_table
from repro.experiments.fig2_cg_extra_iterations import run_fig2, fig2_table
from repro.experiments.fig3_kkt_scaling import run_fig3, fig3_table
from repro.experiments.table3_checkpoint_sizes import run_table3, table3_table
from repro.experiments.fig456_ckpt_recovery_time import run_fig456, fig456_table
from repro.experiments.fig7_expected_overhead import run_fig7, fig7_table
from repro.experiments.fig8_convergence_iterations import run_fig8, fig8_table
from repro.experiments.fig9_jacobi_trajectories import run_fig9, fig9_table
from repro.experiments.fig10_experimental_vs_expected import run_fig10, fig10_table

__all__ = [
    "ExperimentConfig",
    "SMALL_CONFIG",
    "DEFAULT_CONFIG",
    "method_solver",
    "method_problem",
    "run_fig1",
    "fig1_table",
    "run_fig2",
    "fig2_table",
    "run_fig3",
    "fig3_table",
    "run_table3",
    "table3_table",
    "run_fig456",
    "fig456_table",
    "run_fig7",
    "fig7_table",
    "run_fig8",
    "fig8_table",
    "run_fig9",
    "fig9_table",
    "run_fig10",
    "fig10_table",
]
