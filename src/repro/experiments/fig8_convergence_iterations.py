"""Figure 8: convergence iterations, failure-free vs lossy checkpointing.

The paper compares the iteration count each method needs to converge with
lossy checkpointing under injected failures (MTTI = 1 hour, optimal
checkpoint intervals) against the failure-free baseline at 256 - 2,048
processes: Jacobi shows no delay, GMRES occasionally converges slightly
faster, and CG is delayed by roughly 25 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.campaign.executor import run_campaign
from repro.campaign.spec import RunSpec
from repro.experiments.config import ExperimentConfig, SMALL_CONFIG, campaign_fields
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table

__all__ = ["Fig8Result", "fig8_cells", "run_fig8", "fig8_table"]

PAPER_METHODS = ("jacobi", "gmres", "cg")
PAPER_FIG8_PROCESSES = (256, 512, 1024, 2048)


@dataclass
class Fig8Result:
    """Iteration counts per (method, process count) with and without failures."""

    methods: List[str]
    process_counts: List[int]
    baseline_iterations: Dict[str, int] = field(default_factory=dict)
    lossy_iterations: Dict[Tuple[str, int], float] = field(default_factory=dict)
    num_failures: Dict[Tuple[str, int], float] = field(default_factory=dict)

    def delay_fraction(self, method: str, processes: int) -> float:
        """Mean extra iterations relative to the failure-free baseline."""
        baseline = self.baseline_iterations[method]
        if baseline == 0:
            return 0.0
        return (self.lossy_iterations[(method, int(processes))] - baseline) / baseline


def fig8_cells(
    config: ExperimentConfig,
    *,
    methods: Sequence[str] = PAPER_METHODS,
    process_counts: Sequence[int],
) -> List[RunSpec]:
    """The Figure 8 campaign: lossy ft runs over method x scale x repetition."""
    return [
        RunSpec(
            kind="ft",
            scheme="lossy",
            compressor="sz",
            error_bound=config.error_bound,
            adaptive=(method == "gmres"),
            num_processes=int(processes),
            mtti_seconds=config.mtti_seconds,
            repetition=rep,
            seed=derive_seed(config.seed, processes, rep, method),
            **campaign_fields(config, method),
        )
        for method in methods
        for processes in process_counts
        for rep in range(config.repetitions)
    ]


def run_fig8(
    config: ExperimentConfig = SMALL_CONFIG,
    *,
    methods: Sequence[str] = PAPER_METHODS,
    process_counts: Sequence[int] = None,
    n_workers: int = 1,
    cache=None,
) -> Fig8Result:
    """Run the lossy-checkpointing failure-injected convergence study."""
    if process_counts is None:
        process_counts = [
            p for p in PAPER_FIG8_PROCESSES if p in set(config.process_counts)
        ] or list(config.process_counts)
    result = Fig8Result(
        methods=[str(m) for m in methods],
        process_counts=[int(p) for p in process_counts],
    )
    cells = fig8_cells(
        config, methods=result.methods, process_counts=result.process_counts
    )
    outcome = run_campaign(cells, n_workers=n_workers, cache=cache)

    totals: Dict[Tuple[str, int], List[float]] = {}
    failures: Dict[Tuple[str, int], List[float]] = {}
    for cell, cell_result in zip(outcome.cells(), outcome.results()):
        key = (cell.method, cell.num_processes)
        report = cell_result["report"]
        result.baseline_iterations[cell.method] = int(cell_result["baseline_iterations"])
        totals.setdefault(key, []).append(float(report["total_iterations"]))
        failures.setdefault(key, []).append(float(report["num_failures"]))
    for key in totals:
        result.lossy_iterations[key] = float(np.mean(totals[key]))
        result.num_failures[key] = float(np.mean(failures[key]))
    return result


def fig8_table(result: Fig8Result) -> str:
    """Render the failure-free vs lossy iteration counts."""
    headers = ["method", "failure-free"] + [
        f"lossy@{p}" for p in result.process_counts
    ] + [f"delay@{p}" for p in result.process_counts]
    rows = []
    for method in result.methods:
        row = [method, result.baseline_iterations[method]]
        row.extend(
            f"{result.lossy_iterations[(method, p)]:.0f}" for p in result.process_counts
        )
        row.extend(
            f"{100 * result.delay_fraction(method, p):.1f}%"
            for p in result.process_counts
        )
        rows.append(row)
    return format_table(
        headers,
        rows,
        title="Figure 8 — convergence iterations, failure-free vs lossy checkpointing",
    )
