"""Figure 8: convergence iterations, failure-free vs lossy checkpointing.

The paper compares the iteration count each method needs to converge with
lossy checkpointing under injected failures (MTTI = 1 hour, optimal
checkpoint intervals) against the failure-free baseline at 256 - 2,048
processes: Jacobi shows no delay, GMRES occasionally converges slightly
faster, and CG is delayed by roughly 25 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cluster.machine import ClusterModel
from repro.core.runner import FaultTolerantRunner, run_failure_free
from repro.core.scale import paper_scale
from repro.core.schemes import CheckpointingScheme
from repro.experiments.characterize import measure_scheme_ratio, scheme_timings
from repro.experiments.config import ExperimentConfig, SMALL_CONFIG, method_problem, method_solver
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table

__all__ = ["Fig8Result", "run_fig8", "fig8_table"]

PAPER_METHODS = ("jacobi", "gmres", "cg")
PAPER_FIG8_PROCESSES = (256, 512, 1024, 2048)


@dataclass
class Fig8Result:
    """Iteration counts per (method, process count) with and without failures."""

    methods: List[str]
    process_counts: List[int]
    baseline_iterations: Dict[str, int] = field(default_factory=dict)
    lossy_iterations: Dict[Tuple[str, int], float] = field(default_factory=dict)
    num_failures: Dict[Tuple[str, int], float] = field(default_factory=dict)

    def delay_fraction(self, method: str, processes: int) -> float:
        """Mean extra iterations relative to the failure-free baseline."""
        baseline = self.baseline_iterations[method]
        if baseline == 0:
            return 0.0
        return (self.lossy_iterations[(method, int(processes))] - baseline) / baseline


def run_fig8(
    config: ExperimentConfig = SMALL_CONFIG,
    *,
    methods: Sequence[str] = PAPER_METHODS,
    process_counts: Sequence[int] = None,
) -> Fig8Result:
    """Run the lossy-checkpointing failure-injected convergence study."""
    if process_counts is None:
        process_counts = [
            p for p in PAPER_FIG8_PROCESSES if p in set(config.process_counts)
        ] or list(config.process_counts)
    result = Fig8Result(
        methods=[str(m) for m in methods],
        process_counts=[int(p) for p in process_counts],
    )
    for method in result.methods:
        problem = method_problem(config, method)
        solver = method_solver(config, method, problem)
        baseline = run_failure_free(solver, problem.b)
        result.baseline_iterations[method] = baseline.iterations
        scheme = CheckpointingScheme.lossy(
            config.error_bound, adaptive=(method == "gmres")
        )
        characterization = measure_scheme_ratio(solver, problem.b, scheme, method=method)

        for processes in result.process_counts:
            scale = paper_scale(processes)
            cluster = ClusterModel(num_processes=processes)
            timings = scheme_timings(
                scheme, method, characterization.mean_ratio, scale, cluster
            )
            iteration_seconds = cluster.calibrated_iteration_time(
                method, baseline.iterations
            )
            totals = []
            failures = []
            for rep in range(config.repetitions):
                runner = FaultTolerantRunner(
                    solver,
                    problem.b,
                    scheme,
                    cluster=cluster,
                    scale=scale,
                    mtti_seconds=config.mtti_seconds,
                    estimated_checkpoint_seconds=timings.checkpoint_seconds,
                    iteration_seconds=iteration_seconds,
                    method=method,
                    baseline=baseline,
                    seed=derive_seed(config.seed, processes, rep, method),
                )
                report = runner.run()
                totals.append(report.total_iterations)
                failures.append(report.num_failures)
            result.lossy_iterations[(method, processes)] = float(np.mean(totals))
            result.num_failures[(method, processes)] = float(np.mean(failures))
    return result


def fig8_table(result: Fig8Result) -> str:
    """Render the failure-free vs lossy iteration counts."""
    headers = ["method", "failure-free"] + [
        f"lossy@{p}" for p in result.process_counts
    ] + [f"delay@{p}" for p in result.process_counts]
    rows = []
    for method in result.methods:
        row = [method, result.baseline_iterations[method]]
        row.extend(
            f"{result.lossy_iterations[(method, p)]:.0f}" for p in result.process_counts
        )
        row.extend(
            f"{100 * result.delay_fraction(method, p):.1f}%"
            for p in result.process_counts
        )
        rows.append(row)
    return format_table(
        headers,
        rows,
        title="Figure 8 — convergence iterations, failure-free vs lossy checkpointing",
    )
