"""Shared characterization helpers used by Table 3 and Figures 4-8, 10.

The paper first measures the *mean size and time of one checkpoint/recovery*
for every method/scheme at a fixed checkpoint frequency (Section 5.3), and
then feeds those numbers into the optimal-interval experiments (Section 5.4).
These helpers reproduce that two-step methodology:

* :func:`measure_scheme_ratio` runs the solver failure-free, samples the
  iterate at a few points of the run and pushes each sample through the
  :class:`~repro.checkpoint.pipeline.CheckpointPipeline` — so the measured
  characterization covers the *whole* serialized payload (the iterate, the
  declared exact-resume vectors with their own per-variable ratios, the
  scalars and the serialization index), not just ``x``;
* :func:`scheme_timings` converts the historical single-ratio estimate into
  modeled paper-scale checkpoint/recovery seconds, while
  :func:`measured_checkpoint_bytes` / :func:`measured_scheme_timings` price
  the measured payload per variable (what Table 3 and Figures 4-6 report).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.campaign.spec import RunSpec
from repro.checkpoint.pipeline import CheckpointPipeline, scaled_payload_bytes
from repro.cluster.machine import ClusterModel
from repro.core.model import CheckpointTimings
from repro.core.scale import ExperimentScale
from repro.core.schemes import CheckpointingScheme
from repro.solvers.base import IterativeSolver

__all__ = [
    "SchemeCharacterization",
    "measure_scheme_ratio",
    "scheme_timings",
    "measured_checkpoint_bytes",
    "measured_scheme_timings",
    "standard_schemes",
    "characterize_cells",
    "characterization_from_result",
]

@dataclass
class SchemeCharacterization:
    """Measured pipeline-payload behaviour of one scheme on one solver run."""

    scheme: str
    method: str
    #: Mean compression ratio of the iterate ``x`` (the paper's headline
    #: number, and what the historical modeled estimate multiplies out).
    mean_ratio: float
    ratios: List[float]
    baseline_iterations: int
    #: Mean measured ratio per full-length vector variable of the payload
    #: (``x`` plus the scheme's declared exact-resume vectors).
    variable_ratios: Dict[str, float] = field(default_factory=dict)
    #: Exactly-stored scalar/counter entries per payload.
    scalar_count: int = 1
    #: Mean serialization-index bytes per payload (absolute, scale-free).
    overhead_bytes: float = 0.0
    #: Serialized payload size of each sample (local, reduced-size bytes).
    payload_bytes: List[int] = field(default_factory=list)

    @property
    def min_ratio(self) -> float:
        """Smallest per-sample ratio (the most conservative checkpoint)."""
        return float(min(self.ratios)) if self.ratios else 1.0

    @property
    def vector_count(self) -> int:
        """Full-length vectors one measured payload stores."""
        return max(1, len(self.variable_ratios))


def measure_scheme_ratio(
    solver: IterativeSolver,
    b: np.ndarray,
    scheme: CheckpointingScheme,
    *,
    method: Optional[str] = None,
    sample_fractions: Sequence[float] = (0.25, 0.5, 0.75),
    x0: Optional[np.ndarray] = None,
) -> SchemeCharacterization:
    """Measure the scheme's full checkpoint payload on representative iterates.

    The solver is run once failure-free; at the given fractions of the run
    the full iteration state (iterate + declared resume state) is captured
    and pushed through a :class:`~repro.checkpoint.pipeline.
    CheckpointPipeline` snapshot under the scheme — including the resolved
    error-bound policy — yielding per-variable measured ratios and the
    serialized payload size.
    """
    b = np.asarray(b, dtype=np.float64)
    baseline = solver.solve(b, x0=x0)
    n_iters = max(1, baseline.iterations)
    targets = sorted(
        {max(1, min(n_iters - 1, int(round(f * n_iters)))) for f in sample_fractions}
    ) or [1]

    snapshots: Dict[int, object] = {}

    def capture(state) -> None:
        if state.iteration in wanted:
            snapshots[state.iteration] = state

    wanted = set(targets)
    solver.solve(b, x0=x0, callback=capture)

    b_norm = float(np.linalg.norm(b))
    pipeline = CheckpointPipeline(scheme, solver=solver)
    ratios: List[float] = []
    payload_bytes: List[int] = []
    per_variable: Dict[str, List[float]] = {}
    overheads: List[int] = []
    scalar_count = 1
    for iteration in targets:
        if iteration not in snapshots:
            continue
        state = snapshots[iteration]
        resume = (
            solver.capture_resume_state(state)
            if scheme.checkpoint_krylov_state
            else None
        )
        snap = pipeline.snapshot(
            state.x,
            iteration=state.iteration,
            resume_state=resume,
            residual_norm=state.residual_norm,
            b_norm=b_norm,
        )
        ratios.append(snap.ratio_of("x"))
        payload_bytes.append(snap.serialized_bytes)
        overheads.append(snap.overhead_bytes)
        scalar_count = sum(1 for v in snap.variables if v.kind != "vector")
        for name, ratio in snap.variable_ratios().items():
            per_variable.setdefault(name, []).append(ratio)
    if not ratios:
        ratios = [1.0]
    return SchemeCharacterization(
        scheme=scheme.name,
        method=method or solver.name,
        mean_ratio=float(np.mean(ratios)),
        ratios=ratios,
        baseline_iterations=baseline.iterations,
        variable_ratios={
            name: float(np.mean(values)) for name, values in per_variable.items()
        },
        scalar_count=int(scalar_count),
        overhead_bytes=float(np.mean(overheads)) if overheads else 0.0,
        payload_bytes=payload_bytes,
    )


def scheme_timings(
    scheme: CheckpointingScheme,
    method: str,
    ratio: float,
    scale: ExperimentScale,
    cluster: ClusterModel,
) -> CheckpointTimings:
    """Modeled paper-scale checkpoint and recovery seconds for one scheme.

    ``ratio`` is the measured compression ratio; the number of dynamic vectors
    follows the scheme (CG checkpoints ``x`` and ``p`` under exact schemes but
    only ``x`` under lossy checkpointing).
    """
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    vectors = scheme.dynamic_vector_count(method)
    uncompressed = scale.vector_bytes * vectors
    compressed = uncompressed / ratio
    checkpoint_seconds = cluster.checkpoint_seconds(
        uncompressed, compressed, compressed=scheme.uses_compression
    )
    recovery_seconds = cluster.recovery_seconds(
        uncompressed,
        compressed,
        static_bytes=scale.static_bytes,
        compressed=scheme.uses_compression,
    )
    return CheckpointTimings(
        checkpoint_seconds=checkpoint_seconds, recovery_seconds=recovery_seconds
    )


def measured_checkpoint_bytes(
    char: SchemeCharacterization,
    scale: ExperimentScale,
    *,
    fallback_vectors: int = 1,
) -> Tuple[float, float]:
    """``(uncompressed, compressed)`` bytes of one measured payload at scale.

    Every full-length vector is scaled by its *own* measured ratio (a
    BiCGSTAB-exact payload prices five differently-compressible vectors, not
    five copies of ``x``), via the same
    :func:`~repro.checkpoint.pipeline.scaled_payload_bytes` rule the engine
    prices runs with.  When the characterization predates per-variable
    measurement (e.g. a deserialized legacy result) it falls back to the
    single-ratio estimate over ``fallback_vectors`` full vectors — pass the
    scheme's ``dynamic_vector_count`` there, or the estimate undercounts
    every multi-vector exact payload.
    """
    if not char.variable_ratios:
        uncompressed = scale.vector_bytes * max(1, int(fallback_vectors))
        return uncompressed, uncompressed / max(char.mean_ratio, 1e-12)
    return scaled_payload_bytes(
        scale,
        char.variable_ratios,
        scalar_count=char.scalar_count,
        overhead_bytes=char.overhead_bytes,
    )


def measured_scheme_timings(
    scheme: CheckpointingScheme,
    char: SchemeCharacterization,
    scale: ExperimentScale,
    cluster: ClusterModel,
) -> CheckpointTimings:
    """Paper-scale checkpoint/recovery seconds of the measured payload.

    The measured counterpart of :func:`scheme_timings`: bytes come from
    :func:`measured_checkpoint_bytes` (per-variable serialized payload)
    instead of ``vector_bytes × dynamic_vector_count / ratio(x)``.
    """
    uncompressed, compressed = measured_checkpoint_bytes(
        char,
        scale,
        fallback_vectors=scheme.dynamic_vector_count(char.method),
    )
    checkpoint_seconds = cluster.checkpoint_seconds(
        uncompressed, compressed, compressed=scheme.uses_compression
    )
    recovery_seconds = cluster.recovery_seconds(
        uncompressed,
        compressed,
        static_bytes=scale.static_bytes,
        compressed=scheme.uses_compression,
    )
    return CheckpointTimings(
        checkpoint_seconds=checkpoint_seconds, recovery_seconds=recovery_seconds
    )


def standard_schemes(
    error_bound: float = 1e-4, *, adaptive_gmres: bool = True, method: str = "jacobi"
) -> List[CheckpointingScheme]:
    """The paper's three schemes, with the GMRES adaptive bound when relevant."""
    adaptive = adaptive_gmres and method == "gmres"
    return [
        CheckpointingScheme.traditional(),
        CheckpointingScheme.lossless(),
        CheckpointingScheme.lossy(error_bound, adaptive=adaptive),
    ]


def characterize_cells(
    config,
    method: str,
    *,
    schemes: Sequence[str] = ("traditional", "lossless", "lossy"),
    compressor: str = "sz",
) -> List[RunSpec]:
    """Campaign cells measuring each scheme's compression ratio for ``method``.

    One cell per scheme; mirrors :func:`standard_schemes` (the lossy scheme
    gets the adaptive Theorem-3 bound for GMRES).
    """
    from repro.experiments.config import campaign_fields

    return [
        RunSpec(
            kind="characterize",
            scheme=scheme,
            compressor=compressor,
            error_bound=config.error_bound,
            adaptive=(scheme == "lossy" and method == "gmres"),
            seed=config.seed,
            **campaign_fields(config, method),
        )
        for scheme in schemes
    ]


def characterization_from_result(result) -> SchemeCharacterization:
    """Rebuild a :class:`SchemeCharacterization` from a cell's JSON result."""
    return SchemeCharacterization(
        scheme=str(result["scheme"]),
        method=str(result["method"]),
        mean_ratio=float(result["mean_ratio"]),
        ratios=[float(r) for r in result["ratios"]],
        baseline_iterations=int(result["baseline_iterations"]),
        variable_ratios={
            str(k): float(v)
            for k, v in dict(result.get("variable_ratios", {})).items()
        },
        scalar_count=int(result.get("scalar_count", 1)),
        overhead_bytes=float(result.get("overhead_bytes", 0.0)),
        payload_bytes=[int(b) for b in result.get("payload_bytes", [])],
    )
