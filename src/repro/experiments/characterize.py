"""Shared characterization helpers used by Table 3 and Figures 4-8, 10.

The paper first measures the *mean size and time of one checkpoint/recovery*
for every method/scheme at a fixed checkpoint frequency (Section 5.3), and
then feeds those numbers into the optimal-interval experiments (Section 5.4).
These helpers reproduce that two-step methodology:

* :func:`measure_scheme_ratio` runs the solver failure-free, samples the
  iterate at a few points of the run, pushes each sample through the scheme's
  compressor and returns the mean compression ratio actually achieved;
* :func:`scheme_timings` converts a measured ratio into modeled paper-scale
  checkpoint and recovery seconds via the cluster model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.campaign.spec import RunSpec
from repro.cluster.machine import ClusterModel
from repro.core.model import CheckpointTimings
from repro.core.scale import ExperimentScale
from repro.core.schemes import CheckpointingScheme
from repro.solvers.base import IterativeSolver

__all__ = [
    "SchemeCharacterization",
    "measure_scheme_ratio",
    "scheme_timings",
    "standard_schemes",
    "characterize_cells",
    "characterization_from_result",
]


@dataclass
class SchemeCharacterization:
    """Measured compression behaviour of one scheme on one solver run."""

    scheme: str
    method: str
    mean_ratio: float
    ratios: List[float]
    baseline_iterations: int

    @property
    def min_ratio(self) -> float:
        """Smallest per-sample ratio (the most conservative checkpoint)."""
        return float(min(self.ratios)) if self.ratios else 1.0


def measure_scheme_ratio(
    solver: IterativeSolver,
    b: np.ndarray,
    scheme: CheckpointingScheme,
    *,
    method: Optional[str] = None,
    sample_fractions: Sequence[float] = (0.25, 0.5, 0.75),
    x0: Optional[np.ndarray] = None,
) -> SchemeCharacterization:
    """Measure the scheme's compression ratio on representative iterates.

    The solver is run once failure-free; the iterate is captured at the given
    fractions of the run and compressed with the scheme's compressor (using
    the adaptive Theorem-3 bound where the scheme defines one).
    """
    b = np.asarray(b, dtype=np.float64)
    baseline = solver.solve(b, x0=x0)
    n_iters = max(1, baseline.iterations)
    targets = sorted(
        {max(1, min(n_iters - 1, int(round(f * n_iters)))) for f in sample_fractions}
    ) or [1]

    snapshots: Dict[int, tuple] = {}

    def capture(state) -> None:
        if state.iteration in wanted:
            snapshots[state.iteration] = (state.x, state.residual_norm)

    wanted = set(targets)
    solver.solve(b, x0=x0, callback=capture)

    b_norm = float(np.linalg.norm(b))
    ratios: List[float] = []
    for iteration in targets:
        if iteration not in snapshots:
            continue
        x_sample, residual_norm = snapshots[iteration]
        compressor = scheme.checkpoint_compressor(
            residual_norm=residual_norm, b_norm=b_norm
        )
        blob = compressor.compress(x_sample)
        ratios.append(blob.compression_ratio)
    if not ratios:
        ratios = [1.0]
    return SchemeCharacterization(
        scheme=scheme.name,
        method=method or solver.name,
        mean_ratio=float(np.mean(ratios)),
        ratios=ratios,
        baseline_iterations=baseline.iterations,
    )


def scheme_timings(
    scheme: CheckpointingScheme,
    method: str,
    ratio: float,
    scale: ExperimentScale,
    cluster: ClusterModel,
) -> CheckpointTimings:
    """Modeled paper-scale checkpoint and recovery seconds for one scheme.

    ``ratio`` is the measured compression ratio; the number of dynamic vectors
    follows the scheme (CG checkpoints ``x`` and ``p`` under exact schemes but
    only ``x`` under lossy checkpointing).
    """
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    vectors = scheme.dynamic_vector_count(method)
    uncompressed = scale.vector_bytes * vectors
    compressed = uncompressed / ratio
    checkpoint_seconds = cluster.checkpoint_seconds(
        uncompressed, compressed, compressed=scheme.uses_compression
    )
    recovery_seconds = cluster.recovery_seconds(
        uncompressed,
        compressed,
        static_bytes=scale.static_bytes,
        compressed=scheme.uses_compression,
    )
    return CheckpointTimings(
        checkpoint_seconds=checkpoint_seconds, recovery_seconds=recovery_seconds
    )


def standard_schemes(
    error_bound: float = 1e-4, *, adaptive_gmres: bool = True, method: str = "jacobi"
) -> List[CheckpointingScheme]:
    """The paper's three schemes, with the GMRES adaptive bound when relevant."""
    adaptive = adaptive_gmres and method == "gmres"
    return [
        CheckpointingScheme.traditional(),
        CheckpointingScheme.lossless(),
        CheckpointingScheme.lossy(error_bound, adaptive=adaptive),
    ]


def characterize_cells(
    config,
    method: str,
    *,
    schemes: Sequence[str] = ("traditional", "lossless", "lossy"),
    compressor: str = "sz",
) -> List[RunSpec]:
    """Campaign cells measuring each scheme's compression ratio for ``method``.

    One cell per scheme; mirrors :func:`standard_schemes` (the lossy scheme
    gets the adaptive Theorem-3 bound for GMRES).
    """
    from repro.experiments.config import campaign_fields

    return [
        RunSpec(
            kind="characterize",
            scheme=scheme,
            compressor=compressor,
            error_bound=config.error_bound,
            adaptive=(scheme == "lossy" and method == "gmres"),
            seed=config.seed,
            **campaign_fields(config, method),
        )
        for scheme in schemes
    ]


def characterization_from_result(result) -> SchemeCharacterization:
    """Rebuild a :class:`SchemeCharacterization` from a cell's JSON result."""
    return SchemeCharacterization(
        scheme=str(result["scheme"]),
        method=str(result["method"]),
        mean_ratio=float(result["mean_ratio"]),
        ratios=[float(r) for r in result["ratios"]],
        baseline_iterations=int(result["baseline_iterations"]),
    )
