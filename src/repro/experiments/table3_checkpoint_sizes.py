"""Table 3: problem sizes and per-process checkpoint sizes.

For every weak-scaling configuration (256 ... 2,048 processes) and every
method (Jacobi, GMRES, CG) the paper reports the per-process checkpoint size
under traditional, lossless and lossy checkpointing.  The reproduction
pushes representative iterates through the full
:class:`~repro.checkpoint.pipeline.CheckpointPipeline` (at reduced grid
size) and converts the **measured serialized payload** to a paper-scale
per-process size: every full-length vector the scheme stores (CG-exact: ``x``
and ``p``; BiCGSTAB-exact: ``x`` plus its four recurrence vectors) is scaled
by its *own* measured compression ratio, with the scalars and the
serialization index counted at their absolute measured size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.campaign.executor import run_campaign
from repro.campaign.spec import RunSpec
from repro.core.scale import paper_scale
from repro.experiments.characterize import (
    characterization_from_result,
    characterize_cells,
    measured_checkpoint_bytes,
)
from repro.experiments.config import ExperimentConfig, SMALL_CONFIG
from repro.utils.tables import format_table

__all__ = ["Table3Result", "table3_cells", "run_table3", "table3_table"]

_MB = 1024.0**2

PAPER_METHODS = ("jacobi", "gmres", "cg")
PAPER_SCHEMES = ("traditional", "lossless", "lossy")


@dataclass
class Table3Result:
    """Per-process checkpoint sizes (MB) and the measurements behind them."""

    process_counts: List[int]
    methods: List[str]
    #: measured compression ratio of the iterate per (method, scheme).
    ratios: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: measured per-vector ratios of the full payload per (method, scheme).
    variable_ratios: Dict[Tuple[str, str], Dict[str, float]] = field(
        default_factory=dict
    )
    #: per-process checkpoint size in MB per (process count, method, scheme).
    sizes_mb: Dict[Tuple[int, str, str], float] = field(default_factory=dict)
    #: paper-scale grid edge per process count.
    grid_n: Dict[int, int] = field(default_factory=dict)

    def size_mb(self, processes: int, method: str, scheme: str) -> float:
        """Per-process checkpoint size in MB for one configuration."""
        return self.sizes_mb[(int(processes), method, scheme)]


def table3_cells(
    config: ExperimentConfig, *, methods: Sequence[str] = PAPER_METHODS
) -> List[RunSpec]:
    """The Table 3 campaign: one characterization per method x scheme."""
    cells: List[RunSpec] = []
    for method in methods:
        cells.extend(characterize_cells(config, method, schemes=PAPER_SCHEMES))
    return cells


def run_table3(
    config: ExperimentConfig = SMALL_CONFIG,
    *,
    methods: Sequence[str] = PAPER_METHODS,
    n_workers: int = 1,
    cache=None,
) -> Table3Result:
    """Measure scheme ratios per method and model the per-process sizes."""
    result = Table3Result(
        process_counts=[int(p) for p in config.process_counts],
        methods=[str(m) for m in methods],
    )
    outcome = run_campaign(
        table3_cells(config, methods=methods), n_workers=n_workers, cache=cache
    )
    characterizations = {}
    for cell, cell_result in zip(outcome.cells(), outcome.results()):
        char = characterization_from_result(cell_result)
        characterizations[(cell.method, cell.scheme)] = char
        result.ratios[(cell.method, cell.scheme)] = char.mean_ratio
        result.variable_ratios[(cell.method, cell.scheme)] = dict(
            char.variable_ratios
        )

    # The per-scale sizes are post-processing on the measured payloads: each
    # stored vector scaled by its own ratio, scalars/index at absolute size.
    for processes in result.process_counts:
        scale = paper_scale(processes)
        result.grid_n[processes] = scale.grid_n
        for method in result.methods:
            for scheme_name in PAPER_SCHEMES:
                char = characterizations[(method, scheme_name)]
                _, compressed = measured_checkpoint_bytes(char, scale)
                per_process_bytes = compressed / processes
                result.sizes_mb[(processes, method, scheme_name)] = per_process_bytes / _MB
    return result


def table3_table(result: Table3Result) -> str:
    """Render Table 3 (per-process checkpoint size in MB)."""
    headers = ["procs", "problem size"]
    for scheme in PAPER_SCHEMES:
        for method in result.methods:
            headers.append(f"{scheme[:5]}.{method}")
    rows = []
    for processes in result.process_counts:
        row = [processes, f"{result.grid_n[processes]}^3"]
        for scheme in PAPER_SCHEMES:
            for method in result.methods:
                row.append(f"{result.size_mb(processes, method, scheme):.2f}")
        rows.append(row)
    return format_table(
        headers,
        rows,
        title="Table 3 — per-process checkpoint size (MB) by scheme and method",
    )
