"""Figure 2: average extra iterations of CG per lossy recovery vs error bound.

The paper compresses the CG iterate at a randomly chosen iteration with SZ at
relative error bounds 1e-3 ... 1e-6, restarts the solver from the decompressed
vector and counts the extra iterations to convergence; the reported averages
range from roughly 10 % to 25 % of the total iteration count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.compression.sz import SZCompressor
from repro.core.extra_iterations import ExtraIterationStudy, measure_extra_iterations
from repro.experiments.config import ExperimentConfig, SMALL_CONFIG, method_problem, method_solver
from repro.utils.tables import format_table

__all__ = ["Fig2Result", "run_fig2", "fig2_table"]

#: The error bounds on the x-axis of Figure 2.
PAPER_ERROR_BOUNDS = (1e-3, 1e-4, 1e-5, 1e-6)


@dataclass
class Fig2Result:
    """Mean extra-iteration fraction per error bound."""

    baseline_iterations: int
    error_bounds: List[float]
    studies: Dict[float, ExtraIterationStudy] = field(default_factory=dict)

    def mean_extra_fraction(self, eb: float) -> float:
        """Mean extra iterations / baseline iterations at error bound ``eb``."""
        return self.studies[eb].mean_extra_fraction


def run_fig2(
    config: ExperimentConfig = SMALL_CONFIG,
    *,
    error_bounds: Sequence[float] = PAPER_ERROR_BOUNDS,
    method: str = "cg",
    trials: int = None,
) -> Fig2Result:
    """Run the random-restart experiment for each error bound."""
    problem = method_problem(config, method)
    solver = method_solver(config, method, problem)
    trials = config.repetitions * 3 if trials is None else int(trials)

    result: Fig2Result = None  # type: ignore[assignment]
    studies: Dict[float, ExtraIterationStudy] = {}
    baseline_iterations = 0
    for index, eb in enumerate(error_bounds):
        study = measure_extra_iterations(
            solver,
            problem.b,
            SZCompressor(float(eb)),
            trials=trials,
            seed=config.seed + index,
        )
        studies[float(eb)] = study
        baseline_iterations = study.baseline_iterations
    result = Fig2Result(
        baseline_iterations=baseline_iterations,
        error_bounds=[float(e) for e in error_bounds],
        studies=studies,
    )
    return result


def fig2_table(result: Fig2Result) -> str:
    """Render mean extra iterations per error bound as a text table."""
    headers = ["relative error bound", "mean extra iters", "mean extra (%)", "max extra iters"]
    rows = []
    for eb in result.error_bounds:
        study = result.studies[eb]
        rows.append(
            [
                f"{eb:.0e}",
                f"{study.mean_extra_iterations:.1f}",
                f"{100 * study.mean_extra_fraction:.1f}%",
                study.max_extra_iterations,
            ]
        )
    return format_table(
        headers,
        rows,
        title=(
            "Figure 2 — CG extra iterations per lossy recovery "
            f"(baseline {result.baseline_iterations} iterations)"
        ),
    )
