"""Figure 2: average extra iterations of CG per lossy recovery vs error bound.

The paper compresses the CG iterate at a randomly chosen iteration with SZ at
relative error bounds 1e-3 ... 1e-6, restarts the solver from the decompressed
vector and counts the extra iterations to convergence; the reported averages
range from roughly 10 % to 25 % of the total iteration count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.campaign.executor import run_campaign
from repro.campaign.spec import RunSpec
from repro.core.extra_iterations import ExtraIterationStudy, ExtraIterationTrial
from repro.experiments.config import ExperimentConfig, SMALL_CONFIG, campaign_fields
from repro.utils.tables import format_table

__all__ = ["Fig2Result", "fig2_cells", "run_fig2", "fig2_table"]

#: The error bounds on the x-axis of Figure 2.
PAPER_ERROR_BOUNDS = (1e-3, 1e-4, 1e-5, 1e-6)


@dataclass
class Fig2Result:
    """Mean extra-iteration fraction per error bound."""

    baseline_iterations: int
    error_bounds: List[float]
    studies: Dict[float, ExtraIterationStudy] = field(default_factory=dict)

    def mean_extra_fraction(self, eb: float) -> float:
        """Mean extra iterations / baseline iterations at error bound ``eb``."""
        return self.studies[eb].mean_extra_fraction


def fig2_cells(
    config: ExperimentConfig,
    *,
    error_bounds: Sequence[float] = PAPER_ERROR_BOUNDS,
    method: str = "cg",
    trials: int = None,
) -> List[RunSpec]:
    """The Figure 2 campaign: one random-restart study per error bound."""
    trials = config.repetitions * 3 if trials is None else int(trials)
    return [
        RunSpec(
            kind="extra_iterations",
            scheme="lossy",
            compressor="sz",
            error_bound=float(eb),
            seed=config.seed + index,
            params={"trials": trials},
            **campaign_fields(config, method),
        )
        for index, eb in enumerate(error_bounds)
    ]


def _study_from_result(result: Dict[str, object]) -> ExtraIterationStudy:
    """Rebuild an :class:`ExtraIterationStudy` from a cell's JSON result."""
    study = ExtraIterationStudy(baseline_iterations=int(result["baseline_iterations"]))
    for trial in result["trials"]:
        study.trials.append(ExtraIterationTrial(**trial))
    return study


def run_fig2(
    config: ExperimentConfig = SMALL_CONFIG,
    *,
    error_bounds: Sequence[float] = PAPER_ERROR_BOUNDS,
    method: str = "cg",
    trials: int = None,
    n_workers: int = 1,
    cache=None,
) -> Fig2Result:
    """Run the random-restart experiment for each error bound."""
    cells = fig2_cells(
        config, error_bounds=error_bounds, method=method, trials=trials
    )
    outcome = run_campaign(cells, n_workers=n_workers, cache=cache)

    studies: Dict[float, ExtraIterationStudy] = {}
    baseline_iterations = 0
    for cell, cell_result in zip(outcome.cells(), outcome.results()):
        study = _study_from_result(cell_result)
        studies[cell.error_bound] = study
        baseline_iterations = study.baseline_iterations
    return Fig2Result(
        baseline_iterations=baseline_iterations,
        error_bounds=[float(e) for e in error_bounds],
        studies=studies,
    )


def fig2_table(result: Fig2Result) -> str:
    """Render mean extra iterations per error bound as a text table."""
    headers = ["relative error bound", "mean extra iters", "mean extra (%)", "max extra iters"]
    rows = []
    for eb in result.error_bounds:
        study = result.studies[eb]
        rows.append(
            [
                f"{eb:.0e}",
                f"{study.mean_extra_iterations:.1f}",
                f"{100 * study.mean_extra_fraction:.1f}%",
                study.max_extra_iterations,
            ]
        )
    return format_table(
        headers,
        rows,
        title=(
            "Figure 2 — CG extra iterations per lossy recovery "
            f"(baseline {result.baseline_iterations} iterations)"
        ),
    )
