"""Shared configuration for the experiment harness.

Centralises the paper's experimental constants (tolerances per method, the
weak-scaling process counts, MTTI, error bounds) and the knobs that make the
reproduction laptop-sized (local grid size, number of failure-injection
repetitions).  Two presets are provided:

* :data:`SMALL_CONFIG` — a few seconds per experiment; used by the test suite.
* :data:`DEFAULT_CONFIG` — larger grids and more repetitions; used by the
  benchmarks and the example scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.precond import JacobiPreconditioner
from repro.sparse.kkt import KKTProblem, kkt_system
from repro.sparse.poisson import PoissonProblem, poisson_system
from repro.solvers import (
    BiCGStabSolver,
    CGSolver,
    GMRESSolver,
    IterativeSolver,
    JacobiSolver,
)

__all__ = [
    "ExperimentConfig",
    "SMALL_CONFIG",
    "DEFAULT_CONFIG",
    "method_solver",
    "method_problem",
    "campaign_fields",
    "PAPER_RTOL",
]

#: Relative convergence tolerances per method, as stated in Section 5.1.
PAPER_RTOL: Dict[str, float] = {"jacobi": 1e-4, "gmres": 7e-5, "cg": 1e-7}


@dataclass(frozen=True)
class ExperimentConfig:
    """Tunable parameters shared by all experiments.

    Attributes
    ----------
    grid_n:
        Local (reduced) grid points per dimension for the Poisson problem.
    kkt_n:
        Local grid parameter for the synthetic KKT problem (Fig. 3).
    process_counts:
        Paper-scale process counts to sweep (Table 3 / Figs. 4-8).
    mtti_seconds:
        Mean time to interruption for the failure-injected runs.
    error_bound:
        Fixed pointwise-relative bound for Jacobi and CG lossy checkpointing.
    repetitions:
        Failure-injected repetitions per configuration (the paper uses 10).
    rtol:
        Per-method relative tolerances.
    gmres_restart:
        Restart length for GMRES (the paper's GMRES(30)).
    seed:
        Base RNG seed for every stochastic component.
    """

    grid_n: int = 24
    kkt_n: int = 10
    process_counts: Tuple[int, ...] = (256, 512, 768, 1024, 1280, 1536, 1792, 2048)
    mtti_seconds: float = 3600.0
    error_bound: float = 1e-4
    repetitions: int = 5
    rtol: Dict[str, float] = field(default_factory=lambda: dict(PAPER_RTOL))
    gmres_restart: int = 30
    max_iter: int = 100000
    seed: int = 2018

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Fast preset used by the unit/integration tests.
SMALL_CONFIG = ExperimentConfig(
    grid_n=12,
    kkt_n=6,
    process_counts=(256, 1024, 2048),
    repetitions=2,
)

#: Default preset used by benchmarks and example scripts.
DEFAULT_CONFIG = ExperimentConfig()


def method_problem(config: ExperimentConfig, method: str, *, seed_offset: int = 0):
    """Build the local test problem a given method is evaluated on.

    Jacobi, GMRES and CG all use the 3D Poisson system (Eq. (15)); the KKT
    problem of Fig. 3 is built separately via :func:`repro.sparse.kkt.kkt_system`.
    """
    if method in ("jacobi", "gmres", "cg", "gauss_seidel", "sor", "ssor", "bicgstab"):
        return poisson_system(config.grid_n, seed=config.seed + seed_offset)
    raise ValueError(f"unknown method {method!r}")


def method_solver(
    config: ExperimentConfig, method: str, problem: "PoissonProblem | KKTProblem"
) -> IterativeSolver:
    """Instantiate the solver the paper uses for ``method`` on ``problem``."""
    rtol = config.rtol.get(method, 1e-6)
    A = problem.A if isinstance(problem, PoissonProblem) else problem.K
    if method == "jacobi":
        return JacobiSolver(A, rtol=rtol, max_iter=config.max_iter)
    if method == "cg":
        return CGSolver(A, rtol=rtol, max_iter=config.max_iter)
    if method == "bicgstab":
        # Not one of the paper's three methods, but its five-vector exact
        # checkpoint is the stress case for measured payload sizing.
        return BiCGStabSolver(A, rtol=rtol, max_iter=config.max_iter)
    if method == "gmres":
        return GMRESSolver(
            A, rtol=rtol, restart=config.gmres_restart, max_iter=config.max_iter
        )
    raise ValueError(f"unknown method {method!r}")


def campaign_fields(config: ExperimentConfig, method: str) -> Dict[str, object]:
    """RunSpec constructor kwargs capturing this config's problem/solver knobs.

    Every figure module builds its campaign cells through this helper so a
    cell executed in a worker process reconstructs exactly the problem and
    solver that :func:`method_problem`/:func:`method_solver` would build in
    process.
    """
    return {
        "method": method,
        "problem_seed": config.seed,
        "grid_n": config.grid_n,
        "kkt_n": config.kkt_n,
        "rtol": 1e-6 if method == "kkt" else config.rtol.get(method, 1e-6),
        "gmres_restart": config.gmres_restart,
        "max_iter": config.max_iter,
    }


def kkt_problem(config: ExperimentConfig) -> KKTProblem:
    """The synthetic KKT system standing in for SuiteSparse KKT240 (Fig. 3)."""
    return kkt_system(config.kkt_n, dims=3, seed=config.seed)


def kkt_solver(config: ExperimentConfig, problem: KKTProblem) -> GMRESSolver:
    """GMRES(30) with a Jacobi preconditioner, rtol 1e-6, as in Fig. 3."""
    return GMRESSolver(
        problem.K,
        preconditioner=JacobiPreconditioner(problem.K),
        rtol=1e-6,
        restart=config.gmres_restart,
        max_iter=config.max_iter,
    )
