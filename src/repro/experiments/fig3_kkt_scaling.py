"""Figure 3: GMRES on a large symmetric-indefinite KKT system across scales.

The paper solves SuiteSparse KKT240 (~28 M equations) with GMRES(30) and a
Jacobi preconditioner on 256 - 4,096 processes, reporting the productive
execution time and the number of iterations to motivate that real iterative
solves run for hours even at scale.  The reproduction solves the synthetic
KKT system of :mod:`repro.sparse.kkt` (same saddle-point structure), takes the
*measured* iteration count, and models the per-scale execution time with the
cluster model under strong scaling (fixed global problem, per-iteration time
inversely proportional to the process count with a communication floor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.campaign.executor import run_campaign
from repro.campaign.spec import RunSpec
from repro.cluster.machine import PAPER_BASELINE_SECONDS
from repro.experiments.config import ExperimentConfig, SMALL_CONFIG, campaign_fields
from repro.utils.tables import format_table

__all__ = ["Fig3Result", "fig3_cells", "run_fig3", "fig3_table"]

#: Process counts on the x-axis of Figure 3.
PAPER_PROCESS_COUNTS = (256, 512, 1024, 2048, 4096)

#: Reference productive time of the KKT240 solve at 4,096 processes (Fig. 3
#: shows a bit over one hour).
_REFERENCE_SECONDS_AT_4096 = 4200.0
#: Fraction of the per-iteration time that does not shrink with more processes
#: (communication / latency floor) — keeps the strong-scaling curve realistic.
_COMM_FLOOR = 0.15


@dataclass
class Fig3Result:
    """Iterations and modeled productive times per process count."""

    iterations: int
    converged: bool
    relative_residual: float
    process_counts: List[int]
    modeled_seconds: Dict[int, float] = field(default_factory=dict)


def fig3_cells(config: ExperimentConfig) -> List[RunSpec]:
    """The Figure 3 campaign: one failure-free solve of the KKT system."""
    return [RunSpec(kind="solve", scheme="traditional", **campaign_fields(config, "kkt"))]


def run_fig3(
    config: ExperimentConfig = SMALL_CONFIG,
    *,
    process_counts: Sequence[int] = PAPER_PROCESS_COUNTS,
    n_workers: int = 1,
    cache=None,
) -> Fig3Result:
    """Solve the synthetic KKT system once and model the scaling curve."""
    outcome = run_campaign(fig3_cells(config), n_workers=n_workers, cache=cache)
    solution = outcome.results()[0]

    result = Fig3Result(
        iterations=int(solution["iterations"]),
        converged=bool(solution["converged"]),
        relative_residual=float(solution["relative_residual"]),
        process_counts=[int(p) for p in process_counts],
    )
    reference_procs = max(result.process_counts)
    for procs in result.process_counts:
        # Strong scaling with a communication floor: time(p) =
        # T_ref * (comm + (1-comm) * p_ref / p).
        speed = _COMM_FLOOR + (1.0 - _COMM_FLOOR) * (procs / reference_procs)
        result.modeled_seconds[procs] = _REFERENCE_SECONDS_AT_4096 / speed
    return result


def fig3_table(result: Fig3Result) -> str:
    """Render the Figure 3 series as a text table."""
    headers = ["processes", "modeled productive time (s)", "iterations"]
    rows = [
        [procs, f"{result.modeled_seconds[procs]:.0f}", result.iterations]
        for procs in result.process_counts
    ]
    title = (
        "Figure 3 — GMRES(30)+Jacobi on the synthetic KKT system "
        f"(converged={result.converged}, rel. residual={result.relative_residual:.1e}); "
        f"reference GMRES baseline at 2,048 procs: {PAPER_BASELINE_SECONDS['gmres']:.0f}s"
    )
    return format_table(headers, rows, title=title)
