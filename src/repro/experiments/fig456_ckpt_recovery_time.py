"""Figures 4, 5, 6: average checkpoint and recovery time per scheme and scale.

Figure 4 reports the mean time of one checkpoint and one recovery for the
Jacobi method under traditional / lossless / lossy checkpointing across
256 - 2,048 processes; Figures 5 and 6 do the same for GMRES and CG.  In the
reproduction the full checkpoint payload is measured on the real
(reduced-size) iterates through the checkpoint pipeline — per-variable
compression ratios plus serialization overhead — and the times come from the
calibrated cluster model pricing those measured bytes, the same two-step
methodology as the paper's Section 5.3 characterization runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.campaign.executor import run_campaign
from repro.campaign.spec import RunSpec
from repro.cluster.machine import ClusterModel
from repro.core.scale import paper_scale
from repro.experiments.characterize import (
    characterization_from_result,
    characterize_cells,
    measured_scheme_timings,
    standard_schemes,
)
from repro.experiments.config import ExperimentConfig, SMALL_CONFIG
from repro.utils.tables import format_table

__all__ = ["Fig456Result", "fig456_cells", "run_fig456", "fig456_table", "FIGURE_FOR_METHOD"]

#: Which paper figure corresponds to which method.
FIGURE_FOR_METHOD = {"jacobi": "Figure 4", "gmres": "Figure 5", "cg": "Figure 6"}

PAPER_SCHEMES = ("traditional", "lossless", "lossy")


@dataclass
class Fig456Result:
    """Checkpoint/recovery seconds per (process count, scheme) for one method."""

    method: str
    process_counts: List[int]
    ratios: Dict[str, float] = field(default_factory=dict)
    checkpoint_seconds: Dict[Tuple[int, str], float] = field(default_factory=dict)
    recovery_seconds: Dict[Tuple[int, str], float] = field(default_factory=dict)
    baseline_iterations: int = 0

    def checkpoint(self, processes: int, scheme: str) -> float:
        """Modeled seconds of one checkpoint for the given configuration."""
        return self.checkpoint_seconds[(int(processes), scheme)]

    def recovery(self, processes: int, scheme: str) -> float:
        """Modeled seconds of one recovery for the given configuration."""
        return self.recovery_seconds[(int(processes), scheme)]


def fig456_cells(
    config: ExperimentConfig, *, method: str = "jacobi"
) -> List[RunSpec]:
    """The Fig. 4/5/6 campaign: one characterization per scheme."""
    return characterize_cells(config, method, schemes=PAPER_SCHEMES)


def run_fig456(
    config: ExperimentConfig = SMALL_CONFIG,
    *,
    method: str = "jacobi",
    process_counts: Sequence[int] = None,
    n_workers: int = 1,
    cache=None,
) -> Fig456Result:
    """Characterize one method's checkpoint/recovery times across scales."""
    process_counts = list(config.process_counts if process_counts is None else process_counts)
    result = Fig456Result(method=method, process_counts=[int(p) for p in process_counts])

    outcome = run_campaign(
        fig456_cells(config, method=method), n_workers=n_workers, cache=cache
    )
    schemes = {
        scheme.name: scheme for scheme in standard_schemes(config.error_bound, method=method)
    }
    characterizations = {}
    for cell, cell_result in zip(outcome.cells(), outcome.results()):
        char = characterization_from_result(cell_result)
        characterizations[cell.scheme] = char
        result.ratios[cell.scheme] = char.mean_ratio
        result.baseline_iterations = char.baseline_iterations

    for processes in result.process_counts:
        scale = paper_scale(processes)
        cluster = ClusterModel(num_processes=processes)
        for scheme_name, scheme in schemes.items():
            timings = measured_scheme_timings(
                scheme, characterizations[scheme_name], scale, cluster
            )
            result.checkpoint_seconds[(processes, scheme_name)] = timings.checkpoint_seconds
            result.recovery_seconds[(processes, scheme_name)] = timings.recovery_seconds
    return result


def fig456_table(result: Fig456Result) -> str:
    """Render one method's checkpoint/recovery time table."""
    figure = FIGURE_FOR_METHOD.get(result.method, "Figure 4/5/6")
    headers = ["procs"]
    for scheme in PAPER_SCHEMES:
        headers.append(f"ckpt {scheme}")
    for scheme in PAPER_SCHEMES:
        headers.append(f"recov {scheme}")
    rows = []
    for processes in result.process_counts:
        row = [processes]
        row.extend(
            f"{result.checkpoint(processes, scheme):.1f}" for scheme in PAPER_SCHEMES
        )
        row.extend(
            f"{result.recovery(processes, scheme):.1f}" for scheme in PAPER_SCHEMES
        )
        rows.append(row)
    ratio_note = ", ".join(
        f"{scheme}: ratio {result.ratios[scheme]:.1f}" for scheme in PAPER_SCHEMES
    )
    return format_table(
        headers,
        rows,
        title=(
            f"{figure} — {result.method} mean checkpoint/recovery time in seconds "
            f"({ratio_note})"
        ),
    )
