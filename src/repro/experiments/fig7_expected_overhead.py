"""Figure 7: expected fault-tolerance overhead across scales, MTTI 1 h and 3 h.

For every process count and every method x scheme combination the paper
evaluates the performance model (Eq. (4) for exact schemes, Eq. (8) for the
lossy scheme) using the measured checkpoint times and the per-method extra
iteration expectation: Theorem 2 for Jacobi (about 6 iterations with
``N = 3941``, ``eb = 1e-4``, ``R ~ 0.99998``), 0 for GMRES (Theorem 3) and
25 % of the total iterations for CG (the empirical Figure 2 value).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.campaign.executor import run_campaign
from repro.campaign.spec import RunSpec
from repro.cluster.machine import (
    ClusterModel,
    PAPER_BASELINE_ITERATIONS,
    PAPER_ITERATION_SECONDS,
)
from repro.core.model import expected_overhead_fraction, lossy_expected_overhead_fraction
from repro.core.scale import paper_scale
from repro.core.stationary_theory import expected_extra_iterations_interval
from repro.experiments.characterize import characterize_cells, scheme_timings, standard_schemes
from repro.experiments.config import ExperimentConfig, SMALL_CONFIG
from repro.utils.tables import format_table

__all__ = [
    "Fig7Result",
    "fig7_cells",
    "run_fig7",
    "fig7_table",
    "paper_expected_extra_iterations",
]

PAPER_METHODS = ("jacobi", "gmres", "cg")
PAPER_SCHEMES = ("traditional", "lossless", "lossy")

#: The paper's Jacobi spectral-radius estimate for the Theorem-2 expectation.
PAPER_JACOBI_SPECTRAL_RADIUS = 0.99998
#: The paper's CG lossy-recovery delay (25% of the total iterations).
PAPER_CG_EXTRA_FRACTION = 0.25


def paper_expected_extra_iterations(method: str, *, error_bound: float = 1e-4) -> float:
    """The N' value the paper plugs into Eq. (8) for each method."""
    if method == "jacobi":
        total = PAPER_BASELINE_ITERATIONS["jacobi"]
        interval = expected_extra_iterations_interval(
            total, PAPER_JACOBI_SPECTRAL_RADIUS, error_bound
        )
        return float(sum(interval) / 2.0)
    if method == "gmres":
        return 0.0
    if method == "cg":
        return PAPER_CG_EXTRA_FRACTION * PAPER_BASELINE_ITERATIONS["cg"]
    raise ValueError(f"unknown method {method!r}")


@dataclass
class Fig7Result:
    """Expected overhead fraction per (MTTI, process count, method, scheme)."""

    mtti_hours: List[float]
    process_counts: List[int]
    methods: List[str]
    overhead: Dict[Tuple[float, int, str, str], float] = field(default_factory=dict)
    extra_iterations: Dict[str, float] = field(default_factory=dict)

    def value(self, mtti_hours: float, processes: int, method: str, scheme: str) -> float:
        """Expected overhead fraction for one configuration."""
        return self.overhead[(float(mtti_hours), int(processes), method, scheme)]


def fig7_cells(
    config: ExperimentConfig, *, methods: Sequence[str] = PAPER_METHODS
) -> List[RunSpec]:
    """The Figure 7 campaign: one characterization per method x scheme."""
    cells: List[RunSpec] = []
    for method in methods:
        cells.extend(characterize_cells(config, method, schemes=PAPER_SCHEMES))
    return cells


def run_fig7(
    config: ExperimentConfig = SMALL_CONFIG,
    *,
    mtti_hours: Sequence[float] = (1.0, 3.0),
    methods: Sequence[str] = PAPER_METHODS,
    n_workers: int = 1,
    cache=None,
) -> Fig7Result:
    """Evaluate the expected-overhead model across scales and failure rates."""
    result = Fig7Result(
        mtti_hours=[float(h) for h in mtti_hours],
        process_counts=[int(p) for p in config.process_counts],
        methods=[str(m) for m in methods],
    )
    outcome = run_campaign(
        fig7_cells(config, methods=result.methods), n_workers=n_workers, cache=cache
    )
    ratios: Dict[Tuple[str, str], float] = {}
    for cell, cell_result in zip(outcome.cells(), outcome.results()):
        ratios[(cell.method, cell.scheme)] = float(cell_result["mean_ratio"])
    schemes_by_method = {
        method: {
            scheme.name: scheme
            for scheme in standard_schemes(config.error_bound, method=method)
        }
        for method in result.methods
    }
    for method in result.methods:
        result.extra_iterations[method] = paper_expected_extra_iterations(
            method, error_bound=config.error_bound
        )

    for mtti_h in result.mtti_hours:
        lam = 1.0 / (mtti_h * 3600.0)
        for processes in result.process_counts:
            scale = paper_scale(processes)
            cluster = ClusterModel(num_processes=processes)
            for method in result.methods:
                iteration_seconds = PAPER_ITERATION_SECONDS[method]
                for scheme_name in PAPER_SCHEMES:
                    scheme = schemes_by_method[method][scheme_name]
                    timings = scheme_timings(
                        scheme, method, ratios[(method, scheme_name)], scale, cluster
                    )
                    if scheme_name == "lossy":
                        overhead = lossy_expected_overhead_fraction(
                            lam,
                            timings.checkpoint_seconds,
                            result.extra_iterations[method],
                            iteration_seconds,
                        )
                    else:
                        overhead = expected_overhead_fraction(
                            lam, timings.checkpoint_seconds
                        )
                    result.overhead[(mtti_h, processes, method, scheme_name)] = overhead
    return result


def fig7_table(result: Fig7Result) -> str:
    """Render the expected overhead (percent) for every configuration."""
    tables = []
    for mtti_h in result.mtti_hours:
        headers = ["procs"] + [
            f"{method}-{scheme[:5]}"
            for method in result.methods
            for scheme in PAPER_SCHEMES
        ]
        rows = []
        for processes in result.process_counts:
            row = [processes]
            for method in result.methods:
                for scheme in PAPER_SCHEMES:
                    row.append(
                        f"{100 * result.value(mtti_h, processes, method, scheme):.1f}%"
                    )
            rows.append(row)
        tables.append(
            format_table(
                headers,
                rows,
                title=f"Figure 7 — expected fault tolerance overhead, MTTI = {mtti_h:g} hour(s)",
            )
        )
    return "\n\n".join(tables)
