"""Figure 10: experimental vs expected fault-tolerance overhead at 2,048 processes.

The paper's headline experiment: each method (Jacobi, GMRES, CG) runs under
each checkpointing scheme (traditional, lossless, lossy) with its
Young-optimal checkpoint interval while failures are injected at one per
hour; the measured fault-tolerance overhead (total time minus the
failure-free productive time) is compared against the model's expectation.
The lossy scheme reduces the overhead by 23-70 % vs traditional and 20-58 %
vs lossless checkpointing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.campaign.executor import run_campaign
from repro.campaign.spec import RunSpec
from repro.core.model import (
    expected_overhead_fraction,
    lossy_expected_overhead_fraction,
)
from repro.experiments.config import ExperimentConfig, SMALL_CONFIG, campaign_fields
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table

__all__ = ["Fig10Result", "fig10_cells", "run_fig10", "fig10_table"]

PAPER_METHODS = ("jacobi", "gmres", "cg")
PAPER_SCHEMES = ("traditional", "lossless", "lossy")


@dataclass
class Fig10Result:
    """Measured and expected overhead fractions per (method, scheme)."""

    methods: List[str]
    num_processes: int
    mtti_seconds: float
    repetitions: int
    experimental: Dict[Tuple[str, str], float] = field(default_factory=dict)
    expected: Dict[Tuple[str, str], float] = field(default_factory=dict)
    checkpoint_seconds: Dict[Tuple[str, str], float] = field(default_factory=dict)
    intervals: Dict[Tuple[str, str], float] = field(default_factory=dict)
    extra_iteration_fraction: Dict[str, float] = field(default_factory=dict)
    baseline_iterations: Dict[str, int] = field(default_factory=dict)

    def reduction_vs(self, method: str, reference_scheme: str) -> float:
        """Relative overhead reduction of lossy vs a reference scheme."""
        reference = self.experimental[(method, reference_scheme)]
        lossy = self.experimental[(method, "lossy")]
        if reference == 0:
            return 0.0
        return (reference - lossy) / reference


def fig10_cells(
    config: ExperimentConfig,
    *,
    methods: Sequence[str] = PAPER_METHODS,
    num_processes: int = 2048,
) -> List[RunSpec]:
    """The Figure 10 campaign: Young-optimal ft runs per method x scheme x rep."""
    return [
        RunSpec(
            kind="ft",
            scheme=scheme,
            compressor="sz",
            error_bound=config.error_bound,
            adaptive=(scheme == "lossy" and method == "gmres"),
            num_processes=int(num_processes),
            mtti_seconds=config.mtti_seconds,
            repetition=rep,
            seed=derive_seed(config.seed, rep, method, scheme),
            **campaign_fields(config, method),
        )
        for method in methods
        for scheme in PAPER_SCHEMES
        for rep in range(config.repetitions)
    ]


def run_fig10(
    config: ExperimentConfig = SMALL_CONFIG,
    *,
    methods: Sequence[str] = PAPER_METHODS,
    num_processes: int = 2048,
    n_workers: int = 1,
    cache=None,
) -> Fig10Result:
    """Run the optimal-interval failure-injected comparison at one scale."""
    lam = 1.0 / config.mtti_seconds

    result = Fig10Result(
        methods=[str(m) for m in methods],
        num_processes=int(num_processes),
        mtti_seconds=config.mtti_seconds,
        repetitions=config.repetitions,
    )
    cells = fig10_cells(
        config, methods=result.methods, num_processes=num_processes
    )
    outcome = run_campaign(cells, n_workers=n_workers, cache=cache)

    overheads: Dict[Tuple[str, str], List[float]] = {}
    extra_fracs: Dict[Tuple[str, str], List[float]] = {}
    iteration_seconds: Dict[str, float] = {}
    for cell, cell_result in zip(outcome.cells(), outcome.results()):
        key = (cell.method, cell.scheme)
        report = cell_result["report"]
        result.baseline_iterations[cell.method] = int(cell_result["baseline_iterations"])
        result.checkpoint_seconds[key] = float(cell_result["estimated_checkpoint_seconds"])
        result.intervals[key] = float(cell_result["interval_seconds"])
        iteration_seconds[cell.method] = float(cell_result["iteration_seconds"])
        overheads.setdefault(key, []).append(float(cell_result["overhead_fraction"]))
        if int(report["num_failures"]) > 0:
            extra_fracs.setdefault(key, []).append(
                int(cell_result["extra_iterations"]) / max(1, int(report["num_failures"]))
            )

    for method in result.methods:
        baseline_iterations = result.baseline_iterations[method]
        for scheme in PAPER_SCHEMES:
            key = (method, scheme)
            result.experimental[key] = float(np.mean(overheads[key]))
            if scheme == "lossy":
                fracs = extra_fracs.get(key, [])
                mean_extra_per_failure = float(np.mean(fracs)) if fracs else 0.0
                result.extra_iteration_fraction[method] = (
                    mean_extra_per_failure / max(1, baseline_iterations)
                )
                result.expected[key] = lossy_expected_overhead_fraction(
                    lam,
                    result.checkpoint_seconds[key],
                    mean_extra_per_failure,
                    iteration_seconds[method],
                )
            else:
                result.expected[key] = expected_overhead_fraction(
                    lam, result.checkpoint_seconds[key]
                )
    return result


def fig10_table(result: Fig10Result) -> str:
    """Render experimental vs expected overhead for every method/scheme."""
    headers = [
        "method",
        "scheme",
        "Tckp (s)",
        "interval (s)",
        "experimental overhead",
        "expected overhead",
    ]
    rows = []
    for method in result.methods:
        for scheme in PAPER_SCHEMES:
            key = (method, scheme)
            rows.append(
                [
                    method,
                    scheme,
                    f"{result.checkpoint_seconds[key]:.1f}",
                    f"{result.intervals[key]:.0f}",
                    f"{100 * result.experimental[key]:.1f}%",
                    f"{100 * result.expected[key]:.1f}%",
                ]
            )
    reductions = "; ".join(
        f"{method}: lossy vs trad {100 * result.reduction_vs(method, 'traditional'):.0f}%, "
        f"vs lossless {100 * result.reduction_vs(method, 'lossless'):.0f}%"
        for method in result.methods
    )
    return format_table(
        headers,
        rows,
        title=(
            f"Figure 10 — overheads at {result.num_processes} processes, "
            f"MTTI {result.mtti_seconds / 3600:g} h ({reductions})"
        ),
    )
