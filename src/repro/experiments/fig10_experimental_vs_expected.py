"""Figure 10: experimental vs expected fault-tolerance overhead at 2,048 processes.

The paper's headline experiment: each method (Jacobi, GMRES, CG) runs under
each checkpointing scheme (traditional, lossless, lossy) with its
Young-optimal checkpoint interval while failures are injected at one per
hour; the measured fault-tolerance overhead (total time minus the
failure-free productive time) is compared against the model's expectation.
The lossy scheme reduces the overhead by 23-70 % vs traditional and 20-58 %
vs lossless checkpointing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cluster.machine import ClusterModel
from repro.core.model import (
    expected_overhead_fraction,
    lossy_expected_overhead_fraction,
)
from repro.core.runner import FaultTolerantRunner, run_failure_free
from repro.core.scale import paper_scale
from repro.experiments.characterize import measure_scheme_ratio, scheme_timings, standard_schemes
from repro.experiments.config import ExperimentConfig, SMALL_CONFIG, method_problem, method_solver
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table

__all__ = ["Fig10Result", "run_fig10", "fig10_table"]

PAPER_METHODS = ("jacobi", "gmres", "cg")
PAPER_SCHEMES = ("traditional", "lossless", "lossy")


@dataclass
class Fig10Result:
    """Measured and expected overhead fractions per (method, scheme)."""

    methods: List[str]
    num_processes: int
    mtti_seconds: float
    repetitions: int
    experimental: Dict[Tuple[str, str], float] = field(default_factory=dict)
    expected: Dict[Tuple[str, str], float] = field(default_factory=dict)
    checkpoint_seconds: Dict[Tuple[str, str], float] = field(default_factory=dict)
    intervals: Dict[Tuple[str, str], float] = field(default_factory=dict)
    extra_iteration_fraction: Dict[str, float] = field(default_factory=dict)
    baseline_iterations: Dict[str, int] = field(default_factory=dict)

    def reduction_vs(self, method: str, reference_scheme: str) -> float:
        """Relative overhead reduction of lossy vs a reference scheme."""
        reference = self.experimental[(method, reference_scheme)]
        lossy = self.experimental[(method, "lossy")]
        if reference == 0:
            return 0.0
        return (reference - lossy) / reference


def run_fig10(
    config: ExperimentConfig = SMALL_CONFIG,
    *,
    methods: Sequence[str] = PAPER_METHODS,
    num_processes: int = 2048,
) -> Fig10Result:
    """Run the optimal-interval failure-injected comparison at one scale."""
    scale = paper_scale(num_processes)
    cluster = ClusterModel(num_processes=num_processes)
    lam = 1.0 / config.mtti_seconds

    result = Fig10Result(
        methods=[str(m) for m in methods],
        num_processes=int(num_processes),
        mtti_seconds=config.mtti_seconds,
        repetitions=config.repetitions,
    )

    for method in result.methods:
        problem = method_problem(config, method)
        solver = method_solver(config, method, problem)
        baseline = run_failure_free(solver, problem.b)
        result.baseline_iterations[method] = baseline.iterations
        iteration_seconds = cluster.calibrated_iteration_time(method, baseline.iterations)

        for scheme in standard_schemes(config.error_bound, method=method):
            characterization = measure_scheme_ratio(
                solver, problem.b, scheme, method=method
            )
            timings = scheme_timings(
                scheme, method, characterization.mean_ratio, scale, cluster
            )
            key = (method, scheme.name)
            result.checkpoint_seconds[key] = timings.checkpoint_seconds
            interval = timings.young_interval(config.mtti_seconds)
            result.intervals[key] = interval

            overheads = []
            extra_fracs = []
            for rep in range(config.repetitions):
                runner = FaultTolerantRunner(
                    solver,
                    problem.b,
                    scheme,
                    cluster=cluster,
                    scale=scale,
                    mtti_seconds=config.mtti_seconds,
                    checkpoint_interval_seconds=interval,
                    iteration_seconds=iteration_seconds,
                    method=method,
                    baseline=baseline,
                    seed=derive_seed(config.seed, rep, method, scheme.name),
                )
                report = runner.run()
                overheads.append(report.overhead_fraction)
                if report.num_failures > 0:
                    extra_fracs.append(
                        report.extra_iterations / max(1, report.num_failures)
                    )
            result.experimental[key] = float(np.mean(overheads))

            if scheme.name == "lossy":
                mean_extra_per_failure = float(np.mean(extra_fracs)) if extra_fracs else 0.0
                result.extra_iteration_fraction[method] = (
                    mean_extra_per_failure / max(1, baseline.iterations)
                )
                result.expected[key] = lossy_expected_overhead_fraction(
                    lam,
                    timings.checkpoint_seconds,
                    mean_extra_per_failure,
                    iteration_seconds,
                )
            else:
                result.expected[key] = expected_overhead_fraction(
                    lam, timings.checkpoint_seconds
                )
    return result


def fig10_table(result: Fig10Result) -> str:
    """Render experimental vs expected overhead for every method/scheme."""
    headers = [
        "method",
        "scheme",
        "Tckp (s)",
        "interval (s)",
        "experimental overhead",
        "expected overhead",
    ]
    rows = []
    for method in result.methods:
        for scheme in PAPER_SCHEMES:
            key = (method, scheme)
            rows.append(
                [
                    method,
                    scheme,
                    f"{result.checkpoint_seconds[key]:.1f}",
                    f"{result.intervals[key]:.0f}",
                    f"{100 * result.experimental[key]:.1f}%",
                    f"{100 * result.expected[key]:.1f}%",
                ]
            )
    reductions = "; ".join(
        f"{method}: lossy vs trad {100 * result.reduction_vs(method, 'traditional'):.0f}%, "
        f"vs lossless {100 * result.reduction_vs(method, 'lossless'):.0f}%"
        for method in result.methods
    )
    return format_table(
        headers,
        rows,
        title=(
            f"Figure 10 — overheads at {result.num_processes} processes, "
            f"MTTI {result.mtti_seconds / 3600:g} h ({reductions})"
        ),
    )
