"""IC(0): incomplete Cholesky factorization with zero fill-in.

For SPD matrices (the Poisson system of Eq. (15)), PETSc's block-Jacobi/IC
preconditioner uses an incomplete Cholesky factor per block.  This module
implements IC(0) on the lower-triangular CSR pattern of ``A``; application of
the preconditioner is two triangular solves with ``L`` and ``L^T``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.precond.base import Preconditioner, register_preconditioner

__all__ = ["IncompleteCholeskyPreconditioner", "ic0_factor"]


def ic0_factor(A: sp.csr_matrix, *, shift: float = 0.0) -> sp.csr_matrix:
    """Return the IC(0) lower-triangular factor ``L`` with ``A ~ L L^T``.

    Parameters
    ----------
    A:
        Symmetric positive-definite sparse matrix.
    shift:
        Optional diagonal shift added before factorization (used to rescue
        borderline-indefinite matrices; 0 by default).
    """
    A = A.tocsr()
    n = A.shape[0]
    L = sp.tril(A, k=0).tocsr().copy()
    if shift:
        L = (L + shift * sp.identity(n, format="csr")).tocsr()
    L.sort_indices()
    data = L.data
    indices = L.indices
    indptr = L.indptr

    # Row-wise IC(0): for each row i, update entries using previous rows that
    # share columns, then scale by the diagonal pivot.
    for i in range(n):
        row_start, row_end = indptr[i], indptr[i + 1]
        row_cols = indices[row_start:row_end]
        if row_cols.size == 0 or row_cols[-1] != i:
            raise ValueError("IC(0) requires structurally nonzero diagonal entries")
        for offset, j in enumerate(row_cols[:-1]):
            pos_ij = row_start + offset
            # l_ij = (a_ij - sum_k<j l_ik l_jk) / l_jj
            j_start, j_end = indptr[j], indptr[j + 1]
            j_cols = indices[j_start:j_end - 1]  # exclude diagonal of row j
            i_cols = row_cols[:offset]
            common, i_idx, j_idx = np.intersect1d(
                i_cols, j_cols, assume_unique=True, return_indices=True
            )
            if common.size:
                dot = float(np.dot(data[row_start + i_idx], data[j_start + j_idx]))
            else:
                dot = 0.0
            pivot = data[indptr[j + 1] - 1]
            if pivot == 0.0:
                raise ZeroDivisionError(f"zero pivot at row {j} in IC(0)")
            data[pos_ij] = (data[pos_ij] - dot) / pivot
        # Diagonal: l_ii = sqrt(a_ii - sum_k<i l_ik^2)
        off_diag = data[row_start:row_end - 1]
        diag_val = data[row_end - 1] - float(np.dot(off_diag, off_diag))
        if diag_val <= 0.0:
            raise np.linalg.LinAlgError(
                f"IC(0) breakdown at row {i}: non-positive pivot {diag_val:g}; "
                "consider a diagonal shift"
            )
        data[row_end - 1] = np.sqrt(diag_val)
    return sp.csr_matrix((data, indices, indptr), shape=A.shape)


class IncompleteCholeskyPreconditioner(Preconditioner):
    """Apply ``(L L^T)^{-1}`` where ``L`` is the IC(0) factor of ``A``.

    If plain IC(0) breaks down (non-positive pivot), a diagonal shift is
    applied progressively until the factorization succeeds.
    """

    name = "ic0"

    def __init__(self, A, *, shift: float = 0.0, max_shift_attempts: int = 8) -> None:
        super().__init__(A)
        attempt_shift = float(shift)
        base = float(np.mean(np.abs(self.A.diagonal()))) or 1.0
        last_error: Exception | None = None
        for _ in range(int(max_shift_attempts)):
            try:
                self._L = ic0_factor(self.A, shift=attempt_shift)
                self._LT = self._L.T.tocsr()
                self.shift = attempt_shift
                break
            except (np.linalg.LinAlgError, ZeroDivisionError) as err:
                last_error = err
                attempt_shift = max(attempt_shift * 10.0, 1e-6 * base)
        else:
            raise np.linalg.LinAlgError(
                f"IC(0) failed even with diagonal shifts: {last_error}"
            )

    def _solve(self, r: np.ndarray) -> np.ndarray:
        y = sp.linalg.spsolve_triangular(self._L, r, lower=True)
        return sp.linalg.spsolve_triangular(self._LT, y, lower=False)


register_preconditioner("ic0", IncompleteCholeskyPreconditioner)
