"""Preconditioner interface and factory.

A preconditioner approximates the action of ``A^{-1}``: its :meth:`solve`
method returns ``z = M^{-1} r``.  All preconditioners are built once from the
system matrix (a *static* variable in the paper's checkpoint classification)
and are re-built, not checkpointed, after a failure.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_square_matrix, check_vector

__all__ = ["Preconditioner", "IdentityPreconditioner", "make_preconditioner",
           "register_preconditioner"]


class Preconditioner(abc.ABC):
    """Abstract preconditioner: apply ``M^{-1}`` to a residual vector."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    def __init__(self, A) -> None:
        self.A = check_square_matrix(A)
        self.n = self.A.shape[0]

    def solve(self, r: np.ndarray) -> np.ndarray:
        """Return ``z = M^{-1} r``."""
        r = check_vector(r, "r")
        if r.size != self.n:
            raise ValueError(f"r has length {r.size}, expected {self.n}")
        return self._solve(r)

    @abc.abstractmethod
    def _solve(self, r: np.ndarray) -> np.ndarray:
        """Apply the preconditioner to a validated vector."""

    def as_linear_operator(self) -> sp.linalg.LinearOperator:
        """Expose the preconditioner as a SciPy ``LinearOperator`` (for tests)."""
        return sp.linalg.LinearOperator((self.n, self.n), matvec=self.solve)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"


class IdentityPreconditioner(Preconditioner):
    """No preconditioning: ``M = I``."""

    name = "identity"

    def _solve(self, r: np.ndarray) -> np.ndarray:
        return r.copy()


_REGISTRY: Dict[str, Callable[..., Preconditioner]] = {}


def register_preconditioner(name: str, factory: Callable[..., Preconditioner]) -> None:
    """Register a preconditioner factory for :func:`make_preconditioner`."""
    _REGISTRY[name] = factory


def make_preconditioner(name: str, A, **kwargs) -> Preconditioner:
    """Build a registered preconditioner for matrix ``A`` by name.

    Names registered by the built-ins: ``"identity"``, ``"jacobi"``,
    ``"block_jacobi"``, ``"ilu0"``, ``"ic0"``, ``"ssor"``.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown preconditioner {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(A, **kwargs)


register_preconditioner("identity", IdentityPreconditioner)
