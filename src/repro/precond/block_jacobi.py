"""Block-Jacobi preconditioner — PETSc's default and the paper's main choice.

The matrix is partitioned into contiguous diagonal blocks (one block per
simulated rank in the paper's setting); each application of the
preconditioner solves the block-diagonal system exactly via dense LU
factorizations computed once at construction time.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import scipy.linalg as la

from repro.precond.base import Preconditioner, register_preconditioner

__all__ = ["BlockJacobiPreconditioner"]


class BlockJacobiPreconditioner(Preconditioner):
    """Exact solves on contiguous diagonal blocks of ``A``.

    Parameters
    ----------
    A:
        The system matrix.
    num_blocks:
        Number of equally sized (up to remainder) contiguous blocks.  The
        paper's setup corresponds to one block per MPI rank.
    """

    name = "block_jacobi"

    def __init__(self, A, num_blocks: int = 8) -> None:
        super().__init__(A)
        num_blocks = int(num_blocks)
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        num_blocks = min(num_blocks, self.n)
        self.num_blocks = num_blocks
        self._ranges: List[Tuple[int, int]] = []
        self._factors = []
        bounds = np.linspace(0, self.n, num_blocks + 1, dtype=int)
        csr = self.A.tocsr()
        for start, stop in zip(bounds[:-1], bounds[1:]):
            start, stop = int(start), int(stop)
            if stop <= start:
                continue
            block = csr[start:stop, start:stop].toarray()
            # Guard against a singular diagonal block (e.g. saddle-point zero
            # blocks): fall back to a tiny diagonal shift.
            try:
                factor = la.lu_factor(block)
                # lu_factor does not raise on exactly singular blocks; detect
                # zero pivots explicitly.
                if np.any(np.abs(np.diag(factor[0])) < 1e-300):
                    raise la.LinAlgError("singular block")
            except (la.LinAlgError, ValueError):
                shift = 1e-8 * max(1.0, float(np.max(np.abs(block))) if block.size else 1.0)
                factor = la.lu_factor(block + shift * np.eye(block.shape[0]))
            self._ranges.append((start, stop))
            self._factors.append(factor)

    def _solve(self, r: np.ndarray) -> np.ndarray:
        z = np.empty_like(r)
        for (start, stop), factor in zip(self._ranges, self._factors):
            z[start:stop] = la.lu_solve(factor, r[start:stop])
        return z


register_preconditioner("block_jacobi", BlockJacobiPreconditioner)
