"""Point-Jacobi (diagonal) preconditioner.

``M = diag(A)``; the preconditioner the paper selects for the KKT240 / GMRES
study in Fig. 3 after scanning PETSc's preconditioner list.
"""

from __future__ import annotations

import numpy as np

from repro.precond.base import Preconditioner, register_preconditioner

__all__ = ["JacobiPreconditioner"]


class JacobiPreconditioner(Preconditioner):
    """Diagonal scaling preconditioner ``z = D^{-1} r``."""

    name = "jacobi"

    def __init__(self, A) -> None:
        super().__init__(A)
        diag = self.A.diagonal()
        if np.any(diag == 0.0):
            raise ValueError("Jacobi preconditioning requires a nonzero diagonal")
        self._inv_diag = 1.0 / diag

    def _solve(self, r: np.ndarray) -> np.ndarray:
        return r * self._inv_diag


register_preconditioner("jacobi", JacobiPreconditioner)
