"""Preconditioners for the iterative solvers.

The paper uses PETSc's default block-Jacobi preconditioner with ILU/IC inside
each block, and a plain (point) Jacobi preconditioner for the KKT240 study.
This subpackage implements those plus identity and SSOR preconditioning, all
behind a single :class:`~repro.precond.base.Preconditioner` interface whose
``solve`` method applies ``M^{-1}`` to a vector.
"""

from repro.precond.base import Preconditioner, IdentityPreconditioner, make_preconditioner
from repro.precond.jacobi import JacobiPreconditioner
from repro.precond.block_jacobi import BlockJacobiPreconditioner
from repro.precond.ilu import ILU0Preconditioner
from repro.precond.ichol import IncompleteCholeskyPreconditioner
from repro.precond.ssor import SSORPreconditioner

__all__ = [
    "Preconditioner",
    "IdentityPreconditioner",
    "make_preconditioner",
    "JacobiPreconditioner",
    "BlockJacobiPreconditioner",
    "ILU0Preconditioner",
    "IncompleteCholeskyPreconditioner",
    "SSORPreconditioner",
]
