"""ILU(0): incomplete LU factorization with zero fill-in.

Implements the classic IKJ-variant ILU(0) algorithm directly on the CSR
structure: the factors ``L`` (unit lower) and ``U`` (upper) share the sparsity
pattern of ``A`` and no fill is introduced.  This is the "ILU" inside PETSc's
default block-Jacobi/ILU preconditioner that the paper uses for CG and GMRES
on the Poisson problem.

The factorization is performed row by row with NumPy-vectorised inner
updates; it targets the moderate problem sizes of this reproduction (up to a
few hundred thousand unknowns), not extreme scale.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.precond.base import Preconditioner, register_preconditioner

__all__ = ["ILU0Preconditioner", "ilu0_factor"]


def ilu0_factor(A: sp.csr_matrix) -> sp.csr_matrix:
    """Return the combined LU factor of ILU(0) stored in one CSR matrix.

    The returned matrix holds ``U`` on and above the diagonal and the strictly
    lower part of ``L`` below it (unit diagonal of ``L`` implied), using the
    sparsity pattern of ``A``.
    """
    A = A.tocsr().copy()
    A.sort_indices()
    n = A.shape[0]
    data = A.data
    indices = A.indices
    indptr = A.indptr
    # Column -> position lookup per row is built on the fly.
    diag_pos = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        row_cols = indices[indptr[i]:indptr[i + 1]]
        hit = np.searchsorted(row_cols, i)
        if hit < row_cols.size and row_cols[hit] == i:
            diag_pos[i] = indptr[i] + hit
    if np.any(diag_pos < 0):
        raise ValueError("ILU(0) requires every diagonal entry to be structurally nonzero")

    for i in range(1, n):
        row_start, row_end = indptr[i], indptr[i + 1]
        row_cols = indices[row_start:row_end]
        # Eliminate using previous rows k < i present in row i's pattern.
        lower_positions = np.nonzero(row_cols < i)[0]
        for offset in lower_positions:
            pos_ik = row_start + offset
            k = row_cols[offset]
            pivot = data[diag_pos[k]]
            if pivot == 0.0:
                raise ZeroDivisionError(f"zero pivot encountered at row {k} in ILU(0)")
            factor = data[pos_ik] / pivot
            data[pos_ik] = factor
            # Update row i entries for columns j > k that also exist in row k.
            k_start, k_end = indptr[k], indptr[k + 1]
            k_cols = indices[k_start:k_end]
            k_vals = data[k_start:k_end]
            upper_mask = k_cols > k
            if not np.any(upper_mask):
                continue
            target_cols = k_cols[upper_mask]
            target_vals = k_vals[upper_mask]
            # Positions of target_cols within row i's pattern (if present).
            insert = np.searchsorted(row_cols, target_cols)
            valid = (insert < row_cols.size) & (row_cols[np.minimum(insert, row_cols.size - 1)] == target_cols)
            if np.any(valid):
                positions = row_start + insert[valid]
                data[positions] -= factor * target_vals[valid]
    factored = sp.csr_matrix((data, indices, indptr), shape=A.shape)
    return factored


class ILU0Preconditioner(Preconditioner):
    """Apply ``(LU)^{-1}`` where ``L``/``U`` come from ILU(0) of ``A``."""

    name = "ilu0"

    def __init__(self, A) -> None:
        super().__init__(A)
        factored = ilu0_factor(self.A)
        # Split into L (unit diagonal) and U triangular factors once so each
        # application is just two sparse triangular solves.
        lower = sp.tril(factored, k=-1).tocsr()
        self._L = (lower + sp.identity(self.n, format="csr")).tocsr()
        self._U = sp.triu(factored, k=0).tocsr()

    def _solve(self, r: np.ndarray) -> np.ndarray:
        y = sp.linalg.spsolve_triangular(self._L, r, lower=True, unit_diagonal=True)
        return sp.linalg.spsolve_triangular(self._U, y, lower=False)


register_preconditioner("ilu0", ILU0Preconditioner)
