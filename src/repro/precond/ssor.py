"""SSOR preconditioner.

The symmetric successive over-relaxation preconditioner

.. math::

    M = \\frac{1}{\\omega (2 - \\omega)} (D + \\omega L) D^{-1} (D + \\omega U)

where ``A = D + L + U`` (``L``/``U`` strictly lower/upper).  It requires no
setup beyond extracting the triangles and is a convenient SPD preconditioner
for CG when ILU/IC is overkill.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.precond.base import Preconditioner, register_preconditioner

__all__ = ["SSORPreconditioner"]


class SSORPreconditioner(Preconditioner):
    """Apply the SSOR preconditioner with relaxation factor ``omega``."""

    name = "ssor"

    def __init__(self, A, omega: float = 1.0) -> None:
        super().__init__(A)
        omega = float(omega)
        if not (0.0 < omega < 2.0):
            raise ValueError(f"omega must be in (0, 2), got {omega}")
        self.omega = omega
        diag = self.A.diagonal()
        if np.any(diag == 0.0):
            raise ValueError("SSOR requires a nonzero diagonal")
        D = sp.diags(diag, format="csr")
        L = sp.tril(self.A, k=-1).tocsr()
        U = sp.triu(self.A, k=1).tocsr()
        self._lower = (D + omega * L).tocsr()
        self._upper = (D + omega * U).tocsr()
        self._diag = diag
        self._scale = omega * (2.0 - omega)

    def _solve(self, r: np.ndarray) -> np.ndarray:
        # Solve (D + wL) y = r, then (D + wU) z = D y, scaled by w(2-w).
        y = sp.linalg.spsolve_triangular(self._lower, r, lower=True)
        z = sp.linalg.spsolve_triangular(self._upper, self._diag * y, lower=False)
        return self._scale * z


register_preconditioner("ssor", SSORPreconditioner)
