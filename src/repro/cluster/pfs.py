"""Parallel-file-system I/O time model.

The paper writes checkpoints with FTI's MPI-IO mode and observes that
checkpoint/recovery time grows roughly linearly with the number of processes
under weak scaling — total data grows linearly while the aggregate PFS
bandwidth is constant (Section 5.3).  :class:`PFSModel` captures exactly
that: a fixed aggregate bandwidth shared by all writers, plus a small
per-operation latency.

The default calibration reproduces the paper's anchor measurement: one
traditional checkpoint of a 78.8 GB vector from 2,048 processes takes about
120 seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["PFSModel"]

_GIB = 1024.0**3


@dataclass(frozen=True)
class PFSModel:
    """Aggregate-bandwidth model of a parallel file system.

    Attributes
    ----------
    write_bandwidth:
        Aggregate write bandwidth in bytes/second shared by all processes.
    read_bandwidth:
        Aggregate read bandwidth in bytes/second.
    latency:
        Fixed per-operation latency in seconds (metadata, open/close, MPI-IO
        collective setup).
    per_process_overhead:
        Additional seconds per participating process, capturing metadata and
        collective-I/O contention when thousands of ranks write small
        segments.  This term is what keeps the *compressed* checkpoint times
        growing with scale in Figures 4-6 even though the payload is tiny.
    async_bandwidth_fraction:
        Fraction of the aggregate write bandwidth an *asynchronous* drain
        gets while the solver keeps computing.  A background flush contends
        with the application's own traffic and is throttled by the staging
        agents, so it never sees the full dedicated-write bandwidth a
        stop-the-world checkpoint measures; the default (0.7) makes an async
        drain take ~1.4x the blocking write's bandwidth term.

    The default calibration reproduces the paper's anchor point: writing one
    78.8 GB uncompressed vector from 2,048 processes takes about 120 s
    (bandwidth term ~103 s + contention term ~16 s + latency).
    """

    write_bandwidth: float = 78.8 * _GIB / 103.0
    read_bandwidth: float = 78.8 * _GIB / 95.0
    latency: float = 0.5
    per_process_overhead: float = 0.008
    async_bandwidth_fraction: float = 0.7

    def __post_init__(self) -> None:
        check_positive(self.write_bandwidth, "write_bandwidth")
        check_positive(self.read_bandwidth, "read_bandwidth")
        check_nonnegative(self.latency, "latency")
        check_nonnegative(self.per_process_overhead, "per_process_overhead")
        if not (0.0 < self.async_bandwidth_fraction <= 1.0):
            raise ValueError(
                "async_bandwidth_fraction must be in (0, 1], got "
                f"{self.async_bandwidth_fraction}"
            )

    def write_seconds(self, nbytes: float, *, num_processes: int = 1) -> float:
        """Modeled seconds to write ``nbytes`` from ``num_processes`` ranks."""
        nbytes = check_nonnegative(nbytes, "nbytes")
        if num_processes < 1:
            raise ValueError(f"num_processes must be >= 1, got {num_processes}")
        contention = self.per_process_overhead * num_processes
        return self.latency + contention + nbytes / self.write_bandwidth

    def drain_seconds(self, nbytes: float, *, num_processes: int = 1) -> float:
        """Modeled seconds for an asynchronous background drain of ``nbytes``.

        Same latency/contention terms as a blocking write, but the bandwidth
        term only sees ``async_bandwidth_fraction`` of the aggregate write
        bandwidth (the drain shares the PFS with the running application).
        """
        nbytes = check_nonnegative(nbytes, "nbytes")
        if num_processes < 1:
            raise ValueError(f"num_processes must be >= 1, got {num_processes}")
        contention = self.per_process_overhead * num_processes
        bandwidth = self.write_bandwidth * self.async_bandwidth_fraction
        return self.latency + contention + nbytes / bandwidth

    def read_seconds(self, nbytes: float, *, num_processes: int = 1) -> float:
        """Modeled seconds to read ``nbytes`` into ``num_processes`` ranks."""
        nbytes = check_nonnegative(nbytes, "nbytes")
        if num_processes < 1:
            raise ValueError(f"num_processes must be >= 1, got {num_processes}")
        contention = self.per_process_overhead * num_processes
        return self.latency + contention + nbytes / self.read_bandwidth
