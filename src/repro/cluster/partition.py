"""1-D block partitioning of vectors across simulated MPI ranks.

The paper's checkpoints are written per process (Table 3 reports *per-process*
checkpoint sizes).  This module provides the block decomposition used to
attribute global vector elements — and hence checkpoint bytes — to simulated
ranks, plus helpers to split/reassemble actual NumPy vectors for tests that
exercise the distributed view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["BlockPartition", "block_partition", "local_sizes"]


@dataclass(frozen=True)
class BlockPartition:
    """A contiguous block decomposition of ``n`` elements over ``ranks`` ranks."""

    n: int
    ranks: int
    offsets: Tuple[int, ...]

    @property
    def counts(self) -> Tuple[int, ...]:
        """Number of elements owned by each rank."""
        return tuple(
            self.offsets[r + 1] - self.offsets[r] for r in range(self.ranks)
        )

    def owner(self, index: int) -> int:
        """Rank owning global element ``index``."""
        if not (0 <= index < self.n):
            raise IndexError(f"index {index} out of range [0, {self.n})")
        return int(np.searchsorted(np.asarray(self.offsets), index, side="right") - 1)

    def local_slice(self, rank: int) -> slice:
        """Slice of the global vector owned by ``rank``."""
        if not (0 <= rank < self.ranks):
            raise IndexError(f"rank {rank} out of range [0, {self.ranks})")
        return slice(self.offsets[rank], self.offsets[rank + 1])

    def scatter(self, vector: np.ndarray) -> List[np.ndarray]:
        """Split a global vector into per-rank local pieces (views)."""
        vector = np.asarray(vector)
        if vector.shape[0] != self.n:
            raise ValueError(f"vector has length {vector.shape[0]}, expected {self.n}")
        return [vector[self.local_slice(r)] for r in range(self.ranks)]

    def gather(self, pieces: List[np.ndarray]) -> np.ndarray:
        """Reassemble per-rank pieces into the global vector."""
        if len(pieces) != self.ranks:
            raise ValueError(f"expected {self.ranks} pieces, got {len(pieces)}")
        for rank, piece in enumerate(pieces):
            expected = self.counts[rank]
            if np.asarray(piece).shape[0] != expected:
                raise ValueError(
                    f"piece {rank} has length {np.asarray(piece).shape[0]}, expected {expected}"
                )
        return np.concatenate([np.asarray(p) for p in pieces])


def block_partition(n: int, ranks: int) -> BlockPartition:
    """Build the standard near-equal contiguous block partition."""
    n = int(n)
    ranks = int(ranks)
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if ranks < 1:
        raise ValueError(f"ranks must be >= 1, got {ranks}")
    base, extra = divmod(n, ranks)
    counts = [base + (1 if r < extra else 0) for r in range(ranks)]
    offsets = np.concatenate(([0], np.cumsum(counts))).astype(int)
    return BlockPartition(n=n, ranks=ranks, offsets=tuple(int(o) for o in offsets))


def local_sizes(n: int, ranks: int) -> List[int]:
    """Per-rank element counts of the block partition (convenience)."""
    return list(block_partition(n, ranks).counts)
