"""Machine specification and cluster-level time model.

:class:`ClusterModel` converts *what happened numerically* (bytes compressed,
bytes written, iterations executed) into *modeled wall-clock seconds at the
paper's scale*.  It is the documented substitution for the 2,048-core Bebop
runs (DESIGN.md, "What is measured vs. what is modeled"):

* checkpoint time = parallel compression time + PFS write of the compressed
  bytes,
* recovery time = PFS read of the compressed bytes + parallel decompression +
  regeneration of the static variables (matrix, preconditioner, right-hand
  side),
* iteration time comes from a per-method calibration table derived from the
  paper's own baselines (Jacobi 50 min / 3,941 iterations, GMRES 120 min /
  5,875 iterations, CG 35 min / ~2,376 iterations at 2,048 processes).

Compression/decompression throughput follows the paper's observation that SZ
compresses at ~80 GB/s and decompresses at ~180 GB/s on 1,024 cores with
near-linear scaling (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.checkpoint.store import StoreProfile
from repro.cluster.pfs import PFSModel
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "MachineSpec",
    "ClusterModel",
    "BEBOP_LIKE",
    "PAPER_ITERATION_SECONDS",
    "PAPER_BASELINE_SECONDS",
    "PAPER_BASELINE_ITERATIONS",
    "price_compression",
    "price_decompression",
    "price_checkpoint",
    "price_capture",
    "price_drain",
    "price_recovery",
]

_GIB = 1024.0**3

#: Failure-free ("productive") runtime of each method at 2,048 processes as
#: reported in Section 5.4 of the paper (Jacobi 50 min, GMRES 120 min,
#: CG 35 min).
PAPER_BASELINE_SECONDS: Dict[str, float] = {
    "jacobi": 3000.0,
    "gmres": 7200.0,
    "cg": 2100.0,
    "gauss_seidel": 3000.0,
    "sor": 3000.0,
    "ssor": 3000.0,
    "bicgstab": 2100.0,
}

#: Failure-free iteration counts at 2,048 processes quoted in the paper
#: (Jacobi 3,941; GMRES 5,875; CG ~2,376 from the 594 = 25% statement).
PAPER_BASELINE_ITERATIONS: Dict[str, int] = {
    "jacobi": 3941,
    "gmres": 5875,
    "cg": 2376,
    "gauss_seidel": 3941,
    "sor": 3941,
    "ssor": 3941,
    "bicgstab": 2376,
}

#: Seconds per iteration at the paper's 2,048-process scale, derived from the
#: baseline runtimes and iteration counts quoted in Section 5.4.
PAPER_ITERATION_SECONDS: Dict[str, float] = {
    method: PAPER_BASELINE_SECONDS[method] / PAPER_BASELINE_ITERATIONS[method]
    for method in PAPER_BASELINE_SECONDS
}


@dataclass(frozen=True)
class MachineSpec:
    """Static description of the simulated machine."""

    name: str = "bebop-like"
    nodes: int = 64
    cores_per_node: int = 32
    memory_per_node_gib: float = 128.0
    pfs: PFSModel = field(default_factory=PFSModel)
    #: Per-core lossy compression throughput (bytes/s); 80 GB/s over 1,024 cores.
    compress_bandwidth_per_core: float = 80.0 * _GIB / 1024.0
    #: Per-core lossy decompression throughput (bytes/s); 180 GB/s over 1,024 cores.
    decompress_bandwidth_per_core: float = 180.0 * _GIB / 1024.0
    #: Per-core rate at which static variables (matrix/preconditioner/rhs) are
    #: regenerated during recovery (bytes of static data per second per core).
    static_rebuild_bandwidth_per_core: float = 50.0 * 1024.0**2
    #: Per-core rate of staging a checkpoint into node-local memory / burst
    #: buffer before an asynchronous drain (a memcpy-class operation, orders
    #: of magnitude faster than the PFS).
    staging_bandwidth_per_core: float = 2.0 * _GIB
    #: Fractional compute slowdown while an asynchronous drain is in flight
    #: (the background flush steals memory/network bandwidth from the solver).
    async_compute_interference: float = 0.02
    #: Node-local staging buffers available to asynchronous checkpointing
    #: (double buffering by default).  When every slot holds an in-flight
    #: drain, the next capture is deferred until a drain settles — without
    #: this backpressure a drain slower than the checkpoint interval grows
    #: the dirty queue without bound and no checkpoint ever commits.
    async_staging_slots: int = 2

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.cores_per_node < 1:
            raise ValueError("nodes and cores_per_node must be >= 1")
        check_positive(self.memory_per_node_gib, "memory_per_node_gib")
        check_positive(self.compress_bandwidth_per_core, "compress_bandwidth_per_core")
        check_positive(self.decompress_bandwidth_per_core, "decompress_bandwidth_per_core")
        check_positive(
            self.static_rebuild_bandwidth_per_core, "static_rebuild_bandwidth_per_core"
        )
        check_positive(self.staging_bandwidth_per_core, "staging_bandwidth_per_core")
        check_nonnegative(self.async_compute_interference, "async_compute_interference")
        if int(self.async_staging_slots) < 1:
            raise ValueError("async_staging_slots must be >= 1")

    @property
    def total_cores(self) -> int:
        """Total cores of the machine."""
        return self.nodes * self.cores_per_node


#: The default machine — 64 dual-socket nodes with 32 cores each, like the
#: Bebop partition the paper used.
BEBOP_LIKE = MachineSpec()


# ----------------------------------------------------------------------
# pure pricing functions
# ----------------------------------------------------------------------
# Every cost is a pure function of (spec, num_processes, byte counts): no
# state is read at pricing time, so the engine can price a scheduled event
# once, at event-creation time, and trust the number when the event fires.
# :class:`ClusterModel`'s methods below are thin delegating wrappers.


def price_compression(
    spec: MachineSpec, num_processes: int, uncompressed_bytes: float
) -> float:
    """Parallel lossy-compression seconds for ``uncompressed_bytes``."""
    uncompressed_bytes = check_nonnegative(uncompressed_bytes, "uncompressed_bytes")
    return uncompressed_bytes / (spec.compress_bandwidth_per_core * num_processes)


def price_decompression(
    spec: MachineSpec, num_processes: int, uncompressed_bytes: float
) -> float:
    """Parallel decompression seconds for ``uncompressed_bytes``."""
    uncompressed_bytes = check_nonnegative(uncompressed_bytes, "uncompressed_bytes")
    return uncompressed_bytes / (spec.decompress_bandwidth_per_core * num_processes)


def price_checkpoint(
    spec: MachineSpec,
    num_processes: int,
    uncompressed_bytes: float,
    compressed_bytes: float,
    *,
    compressed: bool = True,
    write_cost_multiplier: float = 1.0,
    profile: Optional[StoreProfile] = None,
) -> float:
    """Seconds of one *blocking* checkpoint write (compression + storage).

    ``write_cost_multiplier`` scales the storage-write portion only
    (FTI-style cheap levels); ``profile`` prices the write through a
    :class:`~repro.checkpoint.store.StoreProfile` instead of the machine's
    PFS model (``None`` keeps the legacy PFS path bit-exact).
    """
    if profile is not None:
        write = profile.write_seconds(compressed_bytes, num_processes)
    else:
        write = spec.pfs.write_seconds(compressed_bytes, num_processes=num_processes)
    if write_cost_multiplier != 1.0:
        write *= check_positive(write_cost_multiplier, "write_cost_multiplier")
    if not compressed:
        return write
    return price_compression(spec, num_processes, uncompressed_bytes) + write


def price_capture(
    spec: MachineSpec,
    num_processes: int,
    uncompressed_bytes: float,
    compressed_bytes: float,
    *,
    compressed: bool = True,
) -> float:
    """Inline (compute-channel) seconds of staging one *async* checkpoint.

    Compression plus the node-local staging copy; the storage write drains
    in the background (:func:`price_drain`).
    """
    compressed_bytes = check_nonnegative(compressed_bytes, "compressed_bytes")
    staging = compressed_bytes / (spec.staging_bandwidth_per_core * num_processes)
    if not compressed:
        return staging
    return price_compression(spec, num_processes, uncompressed_bytes) + staging


def price_drain(
    spec: MachineSpec,
    num_processes: int,
    compressed_bytes: float,
    *,
    write_cost_multiplier: float = 1.0,
    profile: Optional[StoreProfile] = None,
) -> float:
    """I/O-channel seconds to drain one staged checkpoint to storage."""
    if profile is not None:
        drain = profile.drain_seconds(compressed_bytes, num_processes)
    else:
        drain = spec.pfs.drain_seconds(compressed_bytes, num_processes=num_processes)
    if write_cost_multiplier != 1.0:
        drain *= check_positive(write_cost_multiplier, "write_cost_multiplier")
    return drain


def price_recovery(
    spec: MachineSpec,
    num_processes: int,
    uncompressed_bytes: float,
    compressed_bytes: float,
    *,
    static_bytes: float = 0.0,
    compressed: bool = True,
    read_cost_multiplier: float = 1.0,
    profile: Optional[StoreProfile] = None,
) -> float:
    """Seconds of one recovery (read + decompress + rebuild statics)."""
    if profile is not None:
        read = profile.read_seconds(compressed_bytes, num_processes)
    else:
        read = spec.pfs.read_seconds(compressed_bytes, num_processes=num_processes)
    if read_cost_multiplier != 1.0:
        read *= check_positive(read_cost_multiplier, "read_cost_multiplier")
    rebuild = 0.0
    if static_bytes:
        rate = spec.static_rebuild_bandwidth_per_core * num_processes
        rebuild = check_nonnegative(static_bytes, "static_bytes") / rate
    if not compressed:
        return read + rebuild
    return read + price_decompression(spec, num_processes, uncompressed_bytes) + rebuild


@dataclass
class ClusterModel:
    """Time model for a job running on ``num_processes`` processes.

    Parameters
    ----------
    num_processes:
        MPI processes of the modeled job (the paper sweeps 256 - 2,048).
    spec:
        Machine description; defaults to :data:`BEBOP_LIKE`.
    iteration_seconds:
        Per-method seconds per iteration; defaults to the paper-derived table
        :data:`PAPER_ITERATION_SECONDS`.
    """

    num_processes: int = 2048
    spec: MachineSpec = field(default_factory=lambda: BEBOP_LIKE)
    iteration_seconds: Dict[str, float] = field(
        default_factory=lambda: dict(PAPER_ITERATION_SECONDS)
    )

    def __post_init__(self) -> None:
        self.num_processes = int(self.num_processes)
        if self.num_processes < 1:
            raise ValueError("num_processes must be >= 1")

    # -- scaling helpers -----------------------------------------------------
    def with_processes(self, num_processes: int) -> "ClusterModel":
        """A copy of this model for a different process count."""
        return replace(self, num_processes=int(num_processes))

    # -- compute time ---------------------------------------------------------
    def iteration_time(self, method: str, *, override: Optional[float] = None) -> float:
        """Seconds per solver iteration of ``method`` at this scale."""
        if override is not None:
            return check_positive(override, "iteration time override")
        try:
            return self.iteration_seconds[method]
        except KeyError:
            raise KeyError(
                f"no iteration-time calibration for method {method!r}; "
                f"known: {sorted(self.iteration_seconds)}"
            ) from None

    def calibrated_iteration_time(self, method: str, local_iterations: int) -> float:
        """Per-iteration virtual time for a *reduced-size* local run.

        The reproduction solves a much smaller system than the paper (so its
        failure-free iteration count ``local_iterations`` is much smaller than
        the paper's).  To keep the failure process, the checkpoint cadence and
        the rollback costs in the same *proportion* to productive work as in
        the paper, the virtual per-iteration time is stretched so that the
        failure-free virtual runtime equals the paper's baseline runtime for
        this method (DESIGN.md, "What is measured vs. what is modeled").
        """
        local_iterations = int(local_iterations)
        if local_iterations < 1:
            raise ValueError("local_iterations must be >= 1")
        try:
            baseline_seconds = PAPER_BASELINE_SECONDS[method]
        except KeyError:
            raise KeyError(
                f"no baseline-runtime calibration for method {method!r}; "
                f"known: {sorted(PAPER_BASELINE_SECONDS)}"
            ) from None
        return baseline_seconds / local_iterations

    # -- compression time -------------------------------------------------------
    def compression_seconds(self, uncompressed_bytes: float) -> float:
        """Modeled parallel lossy-compression time for ``uncompressed_bytes``."""
        return price_compression(self.spec, self.num_processes, uncompressed_bytes)

    def decompression_seconds(self, uncompressed_bytes: float) -> float:
        """Modeled parallel decompression time for ``uncompressed_bytes``."""
        return price_decompression(self.spec, self.num_processes, uncompressed_bytes)

    # -- checkpoint / recovery time --------------------------------------------
    def checkpoint_seconds(
        self,
        uncompressed_bytes: float,
        compressed_bytes: float,
        *,
        compressed: bool = True,
        write_cost_multiplier: float = 1.0,
        profile: Optional[StoreProfile] = None,
    ) -> float:
        """Modeled time of one checkpoint write.

        ``uncompressed_bytes`` is the dynamic-variable footprint before
        compression; ``compressed_bytes`` is what actually goes to the PFS.
        ``compressed=False`` (traditional checkpointing) skips the compression
        stage.  ``write_cost_multiplier`` scales the storage-write portion
        only (FTI-style multilevel checkpointing prices an L1 local write at a
        few percent of a PFS write; compression time is level-independent).
        ``profile`` prices the storage write through a
        :class:`~repro.checkpoint.store.StoreProfile` instead of the machine's
        PFS model (``None``, the default, keeps the legacy PFS path
        bit-exact).
        """
        return price_checkpoint(
            self.spec,
            self.num_processes,
            uncompressed_bytes,
            compressed_bytes,
            compressed=compressed,
            write_cost_multiplier=write_cost_multiplier,
            profile=profile,
        )

    # -- asynchronous (overlapped) checkpointing --------------------------------
    @property
    def async_interference(self) -> float:
        """Fractional compute slowdown while an async drain is in flight."""
        return self.spec.async_compute_interference

    def capture_seconds(
        self,
        uncompressed_bytes: float,
        compressed_bytes: float,
        *,
        compressed: bool = True,
    ) -> float:
        """Inline (compute-channel) cost of staging one *asynchronous* checkpoint.

        The solver still pays for compression and for copying the compressed
        payload into node-local staging memory, but not for the PFS write —
        that is drained in the background (:meth:`drain_seconds`) while
        compute continues.
        """
        return price_capture(
            self.spec,
            self.num_processes,
            uncompressed_bytes,
            compressed_bytes,
            compressed=compressed,
        )

    def drain_seconds(
        self,
        compressed_bytes: float,
        *,
        write_cost_multiplier: float = 1.0,
        profile: Optional[StoreProfile] = None,
    ) -> float:
        """I/O-channel time to drain one staged checkpoint to storage.

        Prices the background flush of ``compressed_bytes`` at the PFS's
        contended async bandwidth
        (:attr:`~repro.cluster.pfs.PFSModel.async_bandwidth_fraction`);
        ``write_cost_multiplier`` scales it for cheap multilevel targets,
        exactly as in :meth:`checkpoint_seconds`.  ``profile`` reroutes the
        drain through a target store's
        :class:`~repro.checkpoint.store.StoreProfile` (its own contended
        async fraction included); ``None`` keeps the legacy PFS path.
        """
        return price_drain(
            self.spec,
            self.num_processes,
            compressed_bytes,
            write_cost_multiplier=write_cost_multiplier,
            profile=profile,
        )

    def recovery_seconds(
        self,
        uncompressed_bytes: float,
        compressed_bytes: float,
        *,
        static_bytes: float = 0.0,
        compressed: bool = True,
        read_cost_multiplier: float = 1.0,
        profile: Optional[StoreProfile] = None,
    ) -> float:
        """Modeled time of one recovery (read + decompress + rebuild statics).

        ``read_cost_multiplier`` scales the storage-read portion only, so a
        multilevel recovery from a local/partner/RS-encoded checkpoint costs
        less than the PFS read the paper always prices.  ``profile`` reads
        through a store's :class:`~repro.checkpoint.store.StoreProfile`
        instead of the machine's PFS model.
        """
        return price_recovery(
            self.spec,
            self.num_processes,
            uncompressed_bytes,
            compressed_bytes,
            static_bytes=static_bytes,
            compressed=compressed,
            read_cost_multiplier=read_cost_multiplier,
            profile=profile,
        )
