"""Fail-stop failure injection with pluggable arrival models.

The paper injects failures whose inter-arrival times follow an exponential
distribution ("because this is a common behavior of a system for most of its
lifetime"), with a mean time to interruption of one hour in the main
experiment.  :class:`FailureInjector` reproduces that process on the virtual
timeline: failures are pre-sampled lazily and can land anywhere — during
compute, during a checkpoint write, or during a recovery.

Beyond the paper's homogeneous Poisson process, the Section 5.4 MTTI sweep is
extended with two alternative :class:`FailureModel`\\ s:

* :class:`WeibullFailureModel` — Weibull inter-arrivals with shape < 1
  ("infant mortality": after each failure the hazard is initially high and
  decays, producing clustered failures), the standard non-exponential model
  in HPC failure studies;
* :class:`BurstyFailureModel` — a two-state mixture where a fraction of gaps
  are drawn from a much shorter "burst" scale (correlated failures, e.g. a
  flaky switch taking several jobs down in quick succession) while keeping
  the configured overall MTTI.

:class:`ScriptedFailureModel` places failures at exact virtual times — the
deterministic tool the engine's regression tests (and reproducible scenario
debugging) are built on.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive

__all__ = [
    "FailureEvent",
    "FailureModel",
    "PoissonFailureModel",
    "WeibullFailureModel",
    "BurstyFailureModel",
    "ScriptedFailureModel",
    "make_failure_model",
    "FailureInjector",
]


@dataclass(frozen=True)
class FailureEvent:
    """One injected fail-stop failure."""

    index: int
    time: float
    phase: str


class FailureModel(abc.ABC):
    """Inter-arrival-time model of the fail-stop failure process.

    A model is a pure sampler: :meth:`next_gap` draws the time from one
    failure (or from t=0) to the next, using the injector's generator.  All
    state that varies per run (the RNG, the arrival count) lives in the
    :class:`FailureInjector`, so one model instance can be shared.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def next_gap(self, rng, *, failure_index: int, last_time: float) -> float:
        """Sample the gap to the next failure.

        Parameters
        ----------
        rng:
            The injector's generator (all entropy flows through it).
        failure_index:
            How many failures have struck so far (0 for the first arrival).
        last_time:
            Virtual time of the previous failure (0.0 before the first).

        Returns ``inf`` to signal that no further failures arrive.
        """

    @property
    def mean_interarrival(self) -> Optional[float]:
        """Mean gap in virtual seconds (``None`` when undefined/scripted)."""
        return None


class PoissonFailureModel(FailureModel):
    """Exponential inter-arrivals — the paper's homogeneous Poisson process."""

    name = "poisson"

    def __init__(self, mtti: float) -> None:
        self.mtti = check_positive(float(mtti), "mtti")

    def next_gap(self, rng, *, failure_index: int, last_time: float) -> float:
        return float(rng.exponential(self.mtti))

    @property
    def mean_interarrival(self) -> Optional[float]:
        return self.mtti


class WeibullFailureModel(FailureModel):
    """Weibull inter-arrivals with shape < 1 (infant-mortality clustering).

    The scale is chosen so the mean gap equals ``mtti`` — the model changes
    the *variance structure* of the failure process (many short gaps balanced
    by occasional long quiet stretches), not the failure budget, which keeps
    MTTI-sweep comparisons against the Poisson baseline apples-to-apples.
    """

    name = "weibull"

    def __init__(self, mtti: float, *, shape: float = 0.7) -> None:
        self.mtti = check_positive(float(mtti), "mtti")
        self.shape = check_positive(float(shape), "shape")
        self.scale = self.mtti / math.gamma(1.0 + 1.0 / self.shape)

    def next_gap(self, rng, *, failure_index: int, last_time: float) -> float:
        return float(self.scale * rng.weibull(self.shape))

    @property
    def mean_interarrival(self) -> Optional[float]:
        return self.mtti


class BurstyFailureModel(FailureModel):
    """Correlated arrivals: a mixture of burst-scale and quiet-scale gaps.

    With probability ``burst_prob`` a gap is exponential at
    ``burst_fraction * mtti`` (a follow-on failure shortly after the previous
    one); otherwise it is exponential at the quiet scale chosen so the
    overall mean gap stays ``mtti``.
    """

    name = "bursty"

    def __init__(
        self, mtti: float, *, burst_prob: float = 0.25, burst_fraction: float = 0.05
    ) -> None:
        self.mtti = check_positive(float(mtti), "mtti")
        if not (0.0 < float(burst_prob) < 1.0):
            raise ValueError(f"burst_prob must be in (0, 1), got {burst_prob}")
        if not (0.0 < float(burst_fraction) < 1.0):
            raise ValueError(f"burst_fraction must be in (0, 1), got {burst_fraction}")
        self.burst_prob = float(burst_prob)
        self.burst_fraction = float(burst_fraction)
        self.burst_scale = self.burst_fraction * self.mtti
        # Solve p*burst + (1-p)*quiet = mtti for the quiet scale.
        self.quiet_scale = (
            self.mtti - self.burst_prob * self.burst_scale
        ) / (1.0 - self.burst_prob)

    def next_gap(self, rng, *, failure_index: int, last_time: float) -> float:
        scale = self.burst_scale if rng.random() < self.burst_prob else self.quiet_scale
        return float(rng.exponential(scale))

    @property
    def mean_interarrival(self) -> Optional[float]:
        return self.mtti


class ScriptedFailureModel(FailureModel):
    """Failures at exact, pre-scripted virtual times (deterministic).

    ``times`` are absolute times on the virtual timeline, strictly
    increasing; after the list is exhausted no further failures arrive.
    """

    name = "scripted"

    def __init__(self, times: Sequence[float]) -> None:
        self.times = [float(t) for t in times]
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("scripted failure times must be strictly increasing")
        if self.times and self.times[0] <= 0.0:
            raise ValueError("scripted failure times must be positive")

    def next_gap(self, rng, *, failure_index: int, last_time: float) -> float:
        if failure_index >= len(self.times):
            return float("inf")
        return self.times[failure_index] - float(last_time)


_MODEL_FACTORIES = {
    "poisson": PoissonFailureModel,
    "weibull": WeibullFailureModel,
    "bursty": BurstyFailureModel,
}


def make_failure_model(name: str, mtti: float, **params) -> FailureModel:
    """Instantiate a named failure model.

    ``poisson``/``weibull``/``bursty`` take the MTTI plus model-specific
    keyword parameters; ``scripted`` ignores the MTTI and takes explicit
    ``times``.
    """
    if name == "scripted":
        return ScriptedFailureModel(params.pop("times", ()), **params)
    try:
        factory = _MODEL_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown failure model {name!r}; known: "
            f"{sorted([*_MODEL_FACTORIES, 'scripted'])}"
        ) from None
    return factory(mtti, **params)


class FailureInjector:
    """Failure generator on the virtual timeline.

    Parameters
    ----------
    mtti:
        Mean time to interruption in (virtual) seconds; ``None`` or ``inf``
        disables failures entirely (failure-free baseline runs).  When a
        ``model`` is given, ``mtti`` is only consulted for the
        :attr:`failure_rate` diagnostic.
    seed:
        RNG seed / generator for reproducibility.
    model:
        Inter-arrival model; defaults to the paper's Poisson process at the
        given MTTI.
    """

    def __init__(
        self,
        mtti: Optional[float] = 3600.0,
        *,
        seed: SeedLike = None,
        model: Optional[FailureModel] = None,
    ) -> None:
        if model is None and (mtti is None or mtti == float("inf")):
            self.mtti: Optional[float] = None
            self.model: Optional[FailureModel] = None
        elif model is None:
            self.mtti = check_positive(mtti, "mtti")
            self.model = PoissonFailureModel(self.mtti)
        else:
            self.model = model
            self.mtti = model.mean_interarrival
        self._rng = default_rng(seed)
        self._next_time: Optional[float] = None
        self.events: List[FailureEvent] = []
        #: Latent failures (arrival already billed past) strike at the start
        #: of the window that finds them instead of at the stale arrival
        #: time.  The engine enables this on the two-channel (async)
        #: timeline; the blocking timeline keeps the stale arrival untouched
        #: (pinned byte-identical to the pre-refactor runner).
        self.latent_clamp: bool = False
        #: The calendar entry carrying the pending arrival (set by
        #: :meth:`reschedule`; cancelled and re-posted when the arrival
        #: re-arms).
        self._scheduled = None
        if self.model is not None:
            self._next_time = float(
                self.model.next_gap(self._rng, failure_index=0, last_time=0.0)
            )

    @property
    def failure_rate(self) -> float:
        """Failures per (virtual) second — the model's lambda."""
        return 0.0 if not self.mtti else 1.0 / self.mtti

    def next_failure_time(self) -> float:
        """Virtual time of the next pending failure (inf when disabled)."""
        if self._next_time is None:
            return float("inf")
        return self._next_time

    def failure_in(self, start: float, stop: float) -> Optional[float]:
        """Return the pending failure's time if it strikes by ``stop``.

        A pending failure whose arrival time already lies at or before
        ``start`` is *latent*: :meth:`consume` re-armed it inside a phase
        whose full cost had already been charged to the clock (an interrupted
        attempt is billed as one whole phase).  A latent failure strikes in
        the first window that looks for one — otherwise it would sit in the
        past forever and silently disable failure injection for the rest of
        the run (short gaps make this common under the bursty/Weibull
        models, and possible even for Poisson arrivals).
        """
        if self._next_time is None:
            return None
        if self._next_time <= stop:
            return self._next_time
        return None

    def consume(self, time: float, phase: str = "compute") -> FailureEvent:
        """Record the pending failure as having struck at ``time`` and re-arm."""
        if self.model is None:
            raise RuntimeError("failure injection is disabled (mtti=None)")
        event = FailureEvent(index=len(self.events), time=float(time), phase=phase)
        self.events.append(event)
        self._next_time = float(time) + float(
            self.model.next_gap(
                self._rng, failure_index=len(self.events), last_time=float(time)
            )
        )
        return event

    # -- calendar interface -------------------------------------------------
    def peek(self) -> float:
        """Arrival time of the pending failure (``inf`` when disabled).

        Unlike :meth:`consume`, peeking never touches the RNG stream — the
        arrival is drawn when the previous one is consumed, so posting it to
        a calendar once is equivalent to re-checking ``failure_in`` per
        phase.
        """
        return float("inf") if self._next_time is None else self._next_time

    def strike_time(self, window_start: float) -> float:
        """Clock time at which the pending arrival actually strikes.

        A *latent* arrival — one that re-armed inside a phase whose full
        cost was already billed to the clock — lies in the past.  With
        :attr:`latent_clamp` it strikes at the start of the window that
        finds it, so the re-armed process keeps pace with the billed clock;
        without it the stale arrival time is kept as-is.
        """
        time = self.peek()
        if self.latent_clamp and window_start > time:
            return float(window_start)
        return time

    def reschedule(self, calendar) -> None:
        """Post the pending arrival to ``calendar`` as a failure-strike event.

        Cancels the previously posted entry (if any), so the calendar holds
        at most one live strike per injector.  Call after every
        :meth:`consume` — and once up front — to keep the calendar current.
        No-op when failure injection is disabled.
        """
        if self._scheduled is not None:
            self._scheduled.cancel()
            self._scheduled = None
        if self._next_time is not None:
            self._scheduled = calendar.post(
                self._next_time, "failure-strike", payload=self
            )

    @property
    def count(self) -> int:
        """Number of failures injected so far."""
        return len(self.events)
