"""Fail-stop failure injection.

The paper injects failures whose inter-arrival times follow an exponential
distribution ("because this is a common behavior of a system for most of its
lifetime"), with a mean time to interruption of one hour in the main
experiment.  :class:`FailureInjector` reproduces that process on the virtual
timeline: failures are pre-sampled lazily and can land anywhere — during
compute, during a checkpoint write, or during a recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive

__all__ = ["FailureEvent", "FailureInjector"]


@dataclass(frozen=True)
class FailureEvent:
    """One injected fail-stop failure."""

    index: int
    time: float
    phase: str


class FailureInjector:
    """Exponential (Poisson-process) failure generator on the virtual timeline.

    Parameters
    ----------
    mtti:
        Mean time to interruption in (virtual) seconds; ``None`` or ``inf``
        disables failures entirely (failure-free baseline runs).
    seed:
        RNG seed / generator for reproducibility.
    """

    def __init__(self, mtti: Optional[float] = 3600.0, *, seed: SeedLike = None) -> None:
        if mtti is None or mtti == float("inf"):
            self.mtti: Optional[float] = None
        else:
            self.mtti = check_positive(mtti, "mtti")
        self._rng = default_rng(seed)
        self._next_time: Optional[float] = None
        self.events: List[FailureEvent] = []
        if self.mtti is not None:
            self._next_time = float(self._rng.exponential(self.mtti))

    @property
    def failure_rate(self) -> float:
        """Failures per (virtual) second — the model's lambda."""
        return 0.0 if self.mtti is None else 1.0 / self.mtti

    def next_failure_time(self) -> float:
        """Virtual time of the next pending failure (inf when disabled)."""
        if self._next_time is None:
            return float("inf")
        return self._next_time

    def failure_in(self, start: float, stop: float) -> Optional[float]:
        """Return the failure time if one falls inside ``(start, stop]``."""
        if self._next_time is None:
            return None
        if start < self._next_time <= stop:
            return self._next_time
        return None

    def consume(self, time: float, phase: str = "compute") -> FailureEvent:
        """Record the pending failure as having struck at ``time`` and re-arm."""
        if self._next_time is None:
            raise RuntimeError("failure injection is disabled (mtti=None)")
        event = FailureEvent(index=len(self.events), time=float(time), phase=phase)
        self.events.append(event)
        self._next_time = float(time) + float(self._rng.exponential(self.mtti))
        return event

    @property
    def count(self) -> int:
        """Number of failures injected so far."""
        return len(self.events)
