"""Simulated HPC cluster: machine model, PFS I/O model, failures, partitioning.

The paper's evaluation ran on 2,048 cores of the Bebop cluster with roughly
80 GB checkpoints going to a parallel file system.  This subpackage provides
the laptop-scale substitute documented in DESIGN.md: vectors and solvers run
for real at reduced size, while wall-clock seconds for compute, checkpoint
writes and recovery reads are *modeled* by :class:`~repro.cluster.machine.ClusterModel`,
calibrated against the numbers the paper itself reports (a 78.8 GB traditional
checkpoint takes about 120 s; Jacobi/GMRES/CG baselines of 50/120/35 minutes
at 2,048 processes).
"""

from repro.cluster.machine import MachineSpec, ClusterModel, BEBOP_LIKE
from repro.cluster.pfs import PFSModel
from repro.cluster.failures import (
    FailureInjector,
    FailureEvent,
    FailureModel,
    PoissonFailureModel,
    WeibullFailureModel,
    BurstyFailureModel,
    ScriptedFailureModel,
    make_failure_model,
)
from repro.cluster.partition import block_partition, local_sizes, BlockPartition

__all__ = [
    "MachineSpec",
    "ClusterModel",
    "BEBOP_LIKE",
    "PFSModel",
    "FailureInjector",
    "FailureEvent",
    "FailureModel",
    "PoissonFailureModel",
    "WeibullFailureModel",
    "BurstyFailureModel",
    "ScriptedFailureModel",
    "make_failure_model",
    "block_partition",
    "local_sizes",
    "BlockPartition",
]
