#!/usr/bin/env python
"""Theorem 3 in action: the adaptive error bound for GMRES lossy checkpoints.

At several points of a GMRES solve, compress the iterate twice — once with a
fixed pointwise-relative bound and once with the Theorem-3 adaptive bound
``eb = ||r|| / ||b||`` — and compare (a) the compression ratio and (b) the
residual jump caused by restarting from the decompressed iterate.  The
adaptive bound compresses aggressively early (large residual) and carefully
late (small residual), keeping the restart residual on the same order as the
pre-failure residual.

Run:  python examples/gmres_adaptive_error_bound.py
"""

from __future__ import annotations

import numpy as np

from repro.compression import SZCompressor
from repro.core import GMRESErrorBoundPolicy, residual_jump_bound
from repro.solvers import GMRESSolver
from repro.sparse import poisson_system
from repro.utils.tables import format_table


def main() -> None:
    problem = poisson_system(24, seed=3)
    solver = GMRESSolver(problem.A, rtol=7e-5, restart=30, max_iter=5000)

    # One solve: capture every iterate during the baseline run (the sample
    # iterations depend on the final count, which is only known afterwards),
    # instead of solving the full system a second time just to re-visit them.
    snapshots = {}

    def capture(state):
        snapshots[state.iteration] = state.x

    baseline = solver.solve(problem.b, callback=capture)
    print(f"GMRES(30) baseline: {baseline.iterations} iterations")

    b_norm = float(np.linalg.norm(problem.b))
    policy = GMRESErrorBoundPolicy()
    sample_iterations = sorted(
        {max(1, int(f * baseline.iterations)) for f in (0.2, 0.4, 0.6, 0.8)}
    )
    # Free everything that is not a sample point before compressing.
    snapshots = {it: snapshots[it] for it in sample_iterations}

    rows = []
    for iteration in sample_iterations:
        x_t = snapshots[iteration]
        residual = float(np.linalg.norm(problem.b - problem.A @ x_t))

        fixed = SZCompressor(1e-4)
        fixed_blob = fixed.compress(x_t)
        fixed_restart = fixed.decompress(fixed_blob)
        fixed_jump = float(np.linalg.norm(problem.b - problem.A @ fixed_restart))

        adaptive_eb = policy.bound_value(residual, b_norm)
        adaptive = SZCompressor(adaptive_eb)
        adaptive_blob = adaptive.compress(x_t)
        adaptive_restart = adaptive.decompress(adaptive_blob)
        adaptive_jump = float(np.linalg.norm(problem.b - problem.A @ adaptive_restart))

        rows.append([
            iteration,
            f"{residual:.2e}",
            f"{adaptive_eb:.1e}",
            f"{fixed_blob.compression_ratio:.1f}",
            f"{adaptive_blob.compression_ratio:.1f}",
            f"{fixed_jump:.2e}",
            f"{adaptive_jump:.2e}",
            f"{residual_jump_bound(residual, b_norm, adaptive_eb):.2e}",
        ])

    print(format_table(
        ["iteration", "||r||", "adaptive eb", "ratio (fixed 1e-4)",
         "ratio (adaptive)", "||r'|| fixed", "||r'|| adaptive", "||r|| + eb*||b|| (Eq. 14)"],
        rows,
        title="Adaptive (Theorem 3) vs fixed error bound for GMRES checkpoints",
    ))


if __name__ == "__main__":
    main()
