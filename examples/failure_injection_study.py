#!/usr/bin/env python
"""Failure-injection study: traditional vs lossless vs lossy checkpointing.

A miniature version of the paper's Figure 10 experiment for one method: run
the solver under injected failures (MTTI = 1 hour) with each checkpointing
scheme at its Young-optimal interval on the simulated 2,048-process cluster,
and compare the measured fault-tolerance overheads.

Run:  python examples/failure_injection_study.py [jacobi|gmres|cg]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.cluster import ClusterModel
from repro.core import paper_scale
from repro.engine import FaultToleranceEngine, run_failure_free
from repro.experiments.characterize import (
    measure_scheme_ratio,
    measured_scheme_timings,
    standard_schemes,
)
from repro.experiments.config import DEFAULT_CONFIG, method_problem, method_solver
from repro.utils.tables import format_table


def main(method: str = "jacobi", repetitions: int = 6) -> None:
    config = DEFAULT_CONFIG
    problem = method_problem(config, method)
    solver = method_solver(config, method, problem)
    baseline = run_failure_free(solver, problem.b)

    cluster = ClusterModel(num_processes=2048)
    scale = paper_scale(2048)
    iteration_seconds = cluster.calibrated_iteration_time(method, baseline.iterations)
    print(f"{method}: failure-free baseline {baseline.iterations} iterations "
          f"({baseline.iterations * iteration_seconds / 60:.0f} virtual minutes)")

    rows = []
    for scheme in standard_schemes(config.error_bound, method=method):
        characterization = measure_scheme_ratio(solver, problem.b, scheme, method=method)
        timings = measured_scheme_timings(scheme, characterization, scale, cluster)
        interval = timings.young_interval(config.mtti_seconds)

        overheads, failures, extras = [], [], []
        for rep in range(repetitions):
            report = FaultToleranceEngine(
                solver, problem.b, scheme,
                cluster=cluster, scale=scale,
                mtti_seconds=config.mtti_seconds,
                checkpoint_interval_seconds=interval,
                iteration_seconds=iteration_seconds,
                method=method, baseline=baseline, seed=config.seed + rep,
            ).run()
            overheads.append(report.overhead_fraction)
            failures.append(report.num_failures)
            extras.append(report.extra_iterations)
        rows.append([
            scheme.name,
            f"{characterization.mean_ratio:.1f}",
            f"{timings.checkpoint_seconds:.1f}",
            f"{interval:.0f}",
            f"{np.mean(failures):.1f}",
            f"{np.mean(extras):.1f}",
            f"{100 * np.mean(overheads):.1f}%",
        ])

    print(format_table(
        ["scheme", "compression ratio", "Tckp (s)", "Young interval (s)",
         "mean failures", "mean extra iters", "mean overhead"],
        rows,
        title=f"Fault-tolerance overhead for {method} at 2,048 processes, MTTI = 1 h",
    ))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "jacobi")
