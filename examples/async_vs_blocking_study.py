#!/usr/bin/env python
"""Asynchronous (overlapped) vs blocking checkpoint writes, per scheme.

The paper — and the engine's default ``blocking`` write mode — charges every
checkpoint write inline: the solver stalls for compression *plus* the PFS
write.  ``Scenario(write_mode="async")`` splits the timeline into a compute
channel and an I/O channel: the solver stalls only for the inline capture
while the storage write *drains* in the background (shipping incremental
delta payloads), at the cost of a small compute-interference surcharge and
dirty-write risk — a failure mid-drain falls back to the previous completed
checkpoint.

This study runs each checkpointing scheme under injected failures in both
write modes (same seeds, same Young-optimal interval) and reports the
overhead reduction the overlap buys.

Run:  python examples/async_vs_blocking_study.py [jacobi|gmres|cg]

The campaign-grid version of this sweep (``write_mode x checkpoint_costing``)
is available as::

    python -m repro.campaign --preset async-vs-blocking
"""

from __future__ import annotations

import sys

import numpy as np

from repro.cluster import ClusterModel
from repro.core import paper_scale
from repro.engine import FaultToleranceEngine, Scenario, run_failure_free
from repro.experiments.characterize import (
    measure_scheme_ratio,
    measured_scheme_timings,
    standard_schemes,
)
from repro.experiments.config import DEFAULT_CONFIG, method_problem, method_solver
from repro.utils.tables import format_table


def main(method: str = "jacobi", repetitions: int = 6) -> None:
    config = DEFAULT_CONFIG
    problem = method_problem(config, method)
    solver = method_solver(config, method, problem)
    baseline = run_failure_free(solver, problem.b)

    cluster = ClusterModel(num_processes=2048)
    scale = paper_scale(2048)
    iteration_seconds = cluster.calibrated_iteration_time(method, baseline.iterations)
    print(f"{method}: failure-free baseline {baseline.iterations} iterations "
          f"({baseline.iterations * iteration_seconds / 60:.0f} virtual minutes)")

    rows = []
    for scheme in standard_schemes(config.error_bound, method=method):
        characterization = measure_scheme_ratio(solver, problem.b, scheme, method=method)
        timings = measured_scheme_timings(scheme, characterization, scale, cluster)
        interval = timings.young_interval(config.mtti_seconds)

        overheads = {"blocking": [], "async": []}
        drains, dirty = [], []
        for mode in ("blocking", "async"):
            for rep in range(repetitions):
                report = FaultToleranceEngine(
                    solver, problem.b, scheme,
                    cluster=cluster, scale=scale,
                    mtti_seconds=config.mtti_seconds,
                    checkpoint_interval_seconds=interval,
                    iteration_seconds=iteration_seconds,
                    method=method, baseline=baseline, seed=config.seed + rep,
                    scenario=Scenario(write_mode=mode),
                ).run()
                overheads[mode].append(report.fault_tolerance_overhead)
                if mode == "async":
                    drains.append(report.io_drain_seconds)
                    dirty.append(report.info.get("num_dirty_checkpoints", 0))
        blocking = float(np.mean(overheads["blocking"]))
        asynchronous = float(np.mean(overheads["async"]))
        reduction = 100.0 * (blocking - asynchronous) / blocking if blocking else 0.0
        rows.append([
            scheme.name,
            f"{timings.checkpoint_seconds:.1f}",
            f"{interval:.0f}",
            f"{blocking:.0f}",
            f"{asynchronous:.0f}",
            f"{reduction:.1f}%",
            f"{np.mean(drains):.0f}",
            f"{np.mean(dirty):.1f}",
        ])

    print(format_table(
        ["scheme", "Tckp (s)", "interval (s)", "blocking ovh (s)",
         "async ovh (s)", "reduction", "drain (s)", "dirty ckpts"],
        rows,
        title=(f"Overlapped vs blocking checkpoint writes for {method} "
               "at 2,048 processes, MTTI = 1 h"),
    ))
    print("overhead = total wall-clock minus failure-free productive time; "
          "drain time runs on the I/O channel and overlaps compute.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "jacobi")
