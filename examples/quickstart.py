#!/usr/bin/env python
"""Quickstart: lossy-checkpointed PCG on a 3D Poisson system.

Builds the paper's Eq. (15) Poisson problem, solves it with preconditioned CG,
registers the solver state with the checkpoint manager (the paper's
``Protect()``/``Snapshot()`` workflow), takes a lossy checkpoint mid-run,
simulates a failure by wiping the state, restores from the checkpoint and
resumes — printing the compression ratio and the cost (in iterations) of the
lossy restart.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.checkpoint import CheckpointManager, VariableRole
from repro.compression import SZCompressor
from repro.precond import IncompleteCholeskyPreconditioner
from repro.solvers import CGSolver
from repro.sparse import poisson_system


def main() -> None:
    # 1. The problem: a 3D Poisson system with a smooth manufactured solution.
    problem = poisson_system(20, seed=1)
    print(f"Poisson problem: {problem.size} unknowns, {problem.nnz} nonzeros")

    # 2. The solver: preconditioned CG at the paper's CG tolerance (1e-7).
    solver = CGSolver(
        problem.A,
        preconditioner=IncompleteCholeskyPreconditioner(problem.A),
        rtol=1e-7,
        max_iter=5000,
    )
    baseline = solver.solve(problem.b)
    print(f"Failure-free run: {baseline.iterations} iterations, "
          f"relative residual {baseline.relative_residual:.2e}")

    # 3. Checkpointing: protect the dynamic state and snapshot it mid-run
    #    through an error-bounded lossy compressor (pointwise relative 1e-4).
    state = {"x": None, "i": None}
    manager = CheckpointManager(SZCompressor(1e-4))
    manager.protect("x", VariableRole.DYNAMIC, lambda: state["x"],
                    lambda value: state.__setitem__("x", value))
    manager.protect("i", VariableRole.DYNAMIC, lambda: state["i"],
                    lambda value: state.__setitem__("i", value), compressible=False)

    checkpoint_at = baseline.iterations // 2

    def on_iteration(it_state):
        if it_state.iteration == checkpoint_at:
            state["x"] = it_state.x
            state["i"] = it_state.iteration
            record = manager.snapshot(iteration=it_state.iteration)
            print(f"Checkpoint at iteration {it_state.iteration}: "
                  f"{record.uncompressed_bytes} B -> {record.compressed_bytes} B "
                  f"(ratio {record.compression_ratio:.1f}x)")

    solver.solve(problem.b, callback=on_iteration)

    # 4. "Failure": lose the in-memory state, restore the lossy checkpoint and
    #    restart CG from the decompressed iterate (restarted CG, Algorithm 2).
    state.update(x=None, i=None)
    manager.restore()
    resumed = solver.solve(problem.b, x0=state["x"])
    total = state["i"] + resumed.iterations
    print(f"Restarted from the lossy checkpoint at iteration {state['i']}: "
          f"{resumed.iterations} more iterations "
          f"(total {total}, failure-free {baseline.iterations}, "
          f"extra {total - baseline.iterations})")
    error = np.linalg.norm(resumed.x - problem.x_true) / np.linalg.norm(problem.x_true)
    print(f"Solution error vs manufactured solution: {error:.2e}")


if __name__ == "__main__":
    main()
