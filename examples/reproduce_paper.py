#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

Runs the full experiment harness (Figures 1-10 and Table 3) with the default
configuration and prints each artefact as a text table.  This is the script
whose output backs EXPERIMENTS.md.

Run:  python examples/reproduce_paper.py            # default configuration
      python examples/reproduce_paper.py --small    # faster, smaller problems
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    DEFAULT_CONFIG,
    SMALL_CONFIG,
    fig1_table,
    fig2_table,
    fig3_table,
    fig456_table,
    fig7_table,
    fig8_table,
    fig9_table,
    fig10_table,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig456,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_table3,
    table3_table,
)


def main() -> None:
    config = SMALL_CONFIG if "--small" in sys.argv else DEFAULT_CONFIG
    start = time.perf_counter()

    sections = [
        ("Figure 1", lambda: fig1_table(run_fig1())),
        ("Figure 2", lambda: fig2_table(run_fig2(config))),
        ("Figure 3", lambda: fig3_table(run_fig3(config))),
        ("Table 3", lambda: table3_table(run_table3(config))),
        ("Figure 4 (Jacobi)", lambda: fig456_table(run_fig456(config, method="jacobi"))),
        ("Figure 5 (GMRES)", lambda: fig456_table(run_fig456(config, method="gmres"))),
        ("Figure 6 (CG)", lambda: fig456_table(run_fig456(config, method="cg"))),
        ("Figure 7", lambda: fig7_table(run_fig7(config))),
        ("Figure 8", lambda: fig8_table(run_fig8(config))),
        ("Figure 9", lambda: fig9_table(run_fig9(config))),
        ("Figure 10", lambda: fig10_table(run_fig10(config))),
    ]
    for name, build in sections:
        print("=" * 78)
        print(build())
        print()
    print("=" * 78)
    print(f"Regenerated all artefacts in {time.perf_counter() - start:.1f} s "
          f"(config: grid {config.grid_n}^3, {config.repetitions} repetitions)")


if __name__ == "__main__":
    main()
