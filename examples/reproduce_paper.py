#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

Runs the full experiment harness (Figures 1-10 and Table 3) with the default
configuration and prints each artefact as a text table.  This is the script
whose output backs EXPERIMENTS.md.

Every figure is expressed as a campaign (see :mod:`repro.campaign`), so the
expensive cells fan out over worker processes and are cached on disk: a
re-run with the same configuration executes zero cells.

Run:  python examples/reproduce_paper.py                 # default configuration
      python examples/reproduce_paper.py --small         # faster, smaller problems
      python examples/reproduce_paper.py --workers 4     # parallel cells
      python examples/reproduce_paper.py --no-cache      # force re-execution
"""

from __future__ import annotations

import argparse
import time

from repro.campaign import ResultCache
from repro.experiments import (
    DEFAULT_CONFIG,
    SMALL_CONFIG,
    fig1_table,
    fig2_table,
    fig3_table,
    fig456_table,
    fig7_table,
    fig8_table,
    fig9_table,
    fig10_table,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig456,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_table3,
    table3_table,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--small", action="store_true", help="small/fast configuration")
    parser.add_argument(
        "--workers", "-j", type=int, default=1,
        help="worker processes for campaign cells; 1 = serial (default), "
        "0 = auto from core count",
    )
    parser.add_argument(
        "--cache-dir", default=".campaign-cache",
        help="campaign result cache directory (default: .campaign-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="re-execute every campaign cell"
    )
    args = parser.parse_args()

    config = SMALL_CONFIG if args.small else DEFAULT_CONFIG
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    kw = {"n_workers": None if args.workers == 0 else args.workers, "cache": cache}
    start = time.perf_counter()

    sections = [
        ("Figure 1", lambda: fig1_table(run_fig1(**kw))),
        ("Figure 2", lambda: fig2_table(run_fig2(config, **kw))),
        ("Figure 3", lambda: fig3_table(run_fig3(config, **kw))),
        ("Table 3", lambda: table3_table(run_table3(config, **kw))),
        ("Figure 4 (Jacobi)", lambda: fig456_table(run_fig456(config, method="jacobi", **kw))),
        ("Figure 5 (GMRES)", lambda: fig456_table(run_fig456(config, method="gmres", **kw))),
        ("Figure 6 (CG)", lambda: fig456_table(run_fig456(config, method="cg", **kw))),
        ("Figure 7", lambda: fig7_table(run_fig7(config, **kw))),
        ("Figure 8", lambda: fig8_table(run_fig8(config, **kw))),
        ("Figure 9", lambda: fig9_table(run_fig9(config, **kw))),
        ("Figure 10", lambda: fig10_table(run_fig10(config, **kw))),
    ]
    for name, build in sections:
        print("=" * 78)
        print(build())
        print()
    print("=" * 78)
    print(f"Regenerated all artefacts in {time.perf_counter() - start:.1f} s "
          f"(config: grid {config.grid_n}^3, {config.repetitions} repetitions, "
          f"{'auto' if args.workers == 0 else args.workers} worker(s), cache "
          f"{'disabled' if cache is None else args.cache_dir})")


if __name__ == "__main__":
    main()
