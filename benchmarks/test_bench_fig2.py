"""Benchmark: regenerate Figure 2 (CG extra iterations vs error bound)."""

from conftest import run_once

from repro.experiments import fig2_table, run_fig2


def test_bench_fig2_cg_extra_iterations(benchmark, bench_config):
    result = run_once(benchmark, run_fig2, bench_config, trials=12)
    print("\n" + fig2_table(result))
    # The paper reports averages between roughly 10% and 25% of the total
    # iterations across bounds 1e-3..1e-6; at reduced problem size we accept a
    # slightly wider band but the order of magnitude must match.
    for eb in result.error_bounds:
        fraction = result.mean_extra_fraction(eb)
        assert 0.0 <= fraction <= 0.5
    mean_over_bounds = sum(result.mean_extra_fraction(eb) for eb in result.error_bounds) / len(
        result.error_bounds
    )
    assert 0.03 <= mean_over_bounds <= 0.4
