"""Ablation: sensitivity of the measured overhead to the checkpoint interval.

The paper always uses Young's optimal interval; this ablation verifies that
the optimum is real — intervals far from the Young value (4x shorter or 4x
longer) do not beat it on average for the lossy scheme.
"""

import numpy as np
from conftest import run_once

from repro.cluster import ClusterModel
from repro.core import CheckpointingScheme, paper_scale, young_interval
from repro.engine import FaultToleranceEngine as FaultTolerantRunner
from repro.engine import run_failure_free
from repro.experiments.characterize import measure_scheme_ratio, scheme_timings
from repro.experiments.config import method_problem, method_solver
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table


def test_bench_ablation_checkpoint_interval(benchmark, bench_config):
    method = "jacobi"
    problem = method_problem(bench_config, method)
    solver = method_solver(bench_config, method, problem)
    baseline = run_failure_free(solver, problem.b)
    cluster = ClusterModel(num_processes=2048)
    scale = paper_scale(2048)
    scheme = CheckpointingScheme.lossy(bench_config.error_bound)
    char = measure_scheme_ratio(solver, problem.b, scheme, method=method)
    timings = scheme_timings(scheme, method, char.mean_ratio, scale, cluster)
    iteration_seconds = cluster.calibrated_iteration_time(method, baseline.iterations)
    optimal = young_interval(timings.checkpoint_seconds, bench_config.mtti_seconds)

    def sweep():
        means = {}
        for factor in (0.25, 1.0, 4.0):
            overheads = []
            for rep in range(10):
                report = FaultTolerantRunner(
                    solver, problem.b, scheme,
                    cluster=cluster, scale=scale,
                    mtti_seconds=bench_config.mtti_seconds,
                    checkpoint_interval_seconds=optimal * factor,
                    iteration_seconds=iteration_seconds,
                    method=method, baseline=baseline,
                    seed=derive_seed(bench_config.seed, rep, int(factor * 100)),
                ).run()
                overheads.append(report.overhead_fraction)
            means[factor] = float(np.mean(overheads))
        return means

    means = run_once(benchmark, sweep)
    rows = [
        [f"{factor}x Young", f"{optimal * factor:.0f}", f"{100 * value:.1f}%"]
        for factor, value in sorted(means.items())
    ]
    print(
        "\n"
        + format_table(
            ["interval", "seconds", "mean overhead"],
            rows,
            title="Ablation — checkpoint-interval sensitivity (Jacobi, lossy scheme)",
        )
    )
    # Young's interval is no worse than the clearly-too-frequent and the
    # clearly-too-rare settings (allowing a little sampling noise).
    assert means[1.0] <= means[0.25] * 1.15
    assert means[1.0] <= means[4.0] * 1.15
