"""Ablation: SZ-like vs ZFP-like vs lossless compressors on solver iterates.

The paper selects SZ over ZFP for 1-D checkpoint data citing better ratios on
1-D vectors; this ablation reproduces that comparison on the actual iterates
our solvers produce, plus the lossless baselines.
"""

from conftest import run_once

from repro.compression import (
    LzmaCompressor,
    SZCompressor,
    ZFPCompressor,
    ZlibCompressor,
    evaluate_compressor,
)
from repro.experiments.config import method_problem, method_solver
from repro.utils.tables import format_table


def _solver_iterate(config, method="cg"):
    problem = method_problem(config, method)
    solver = method_solver(config, method, problem)
    baseline = solver.solve(problem.b)
    captured = {}
    target = max(1, baseline.iterations // 2)

    def capture(state):
        if state.iteration == target:
            captured["x"] = state.x

    solver.solve(problem.b, callback=capture)
    return captured["x"]


def test_bench_ablation_compressor_families(benchmark, bench_config):
    x = _solver_iterate(bench_config)

    def evaluate_all():
        compressors = [
            SZCompressor(1e-4),
            SZCompressor(1e-4, predictor="linear"),
            ZFPCompressor(1e-4),
            ZlibCompressor(),
            LzmaCompressor(),
        ]
        return [evaluate_compressor(c, x) for c in compressors]

    evaluations = run_once(benchmark, evaluate_all)
    rows = [
        [
            ev.compressor,
            f"{ev.ratio:.1f}",
            f"{ev.max_pointwise_relative_error:.1e}",
            f"{ev.compress_seconds * 1e3:.1f}",
            f"{ev.decompress_seconds * 1e3:.1f}",
        ]
        for ev in evaluations
    ]
    print(
        "\n"
        + format_table(
            ["compressor", "ratio", "max pw-rel error", "compress ms", "decompress ms"],
            rows,
            title="Ablation — compressor families on a mid-run CG iterate",
        )
    )
    by_name = {}
    for ev in evaluations:
        by_name.setdefault(ev.compressor, ev)
    # Error bounds honoured by the lossy compressors; lossless ones are exact.
    assert by_name["sz"].max_pointwise_relative_error <= 1e-4 * (1 + 1e-8)
    assert by_name["zfp"].max_pointwise_relative_error <= 1e-4 * (1 + 1e-8)
    assert by_name["zlib"].max_abs_error == 0.0
    # The paper's selection criterion: the prediction-based (SZ-like)
    # compressor beats the lossless ones by a wide margin on 1-D iterates.
    assert by_name["sz"].ratio > 3 * by_name["zlib"].ratio
    assert by_name["zfp"].ratio > by_name["zlib"].ratio
