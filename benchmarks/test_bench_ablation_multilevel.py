"""Ablation: FTI-style multilevel checkpointing vs PFS-only checkpointing.

The paper writes every checkpoint to the PFS (FTI level 4).  This ablation
quantifies, with the multilevel cost/survival model, how much cheaper the
checkpoint stream becomes when most checkpoints go to faster levels — and how
often a failure then has to fall back to an older surviving checkpoint.
"""

import numpy as np
from conftest import run_once

from repro.checkpoint.multilevel import (
    CheckpointLevel,
    MultilevelCheckpointStore,
    MultilevelPolicy,
)
from repro.utils.tables import format_table


def test_bench_ablation_multilevel_checkpointing(benchmark):
    pfs_write_seconds = 40.0  # one lossy checkpoint at 2,048 processes
    num_checkpoints = 60

    def simulate(policy_name, policy, seed):
        store = MultilevelCheckpointStore(policy, seed=seed)
        for i in range(num_checkpoints):
            store.write(i, b"x")
        write_cost = sum(
            pfs_write_seconds * store.cost_multiplier_of(i) for i in store.ids()
        )
        # Sample the rollback distance (in checkpoints) seen by failures.
        rng = np.random.default_rng(seed)
        distances = []
        for _ in range(200):
            surviving = store.surviving_id()
            newest = store.ids()[-1]
            distances.append(newest - (surviving if surviving is not None else -1))
        return {
            "name": policy_name,
            "write_seconds": write_cost,
            "mean_rollback_checkpoints": float(np.mean(distances)),
        }

    def run_ablation():
        pfs_only = MultilevelPolicy(cycle=[CheckpointLevel.PFS])
        multilevel = MultilevelPolicy()
        return [
            simulate("PFS-only (paper)", pfs_only, seed=1),
            simulate("FTI-style multilevel", multilevel, seed=2),
        ]

    results = run_once(benchmark, run_ablation)
    rows = [
        [r["name"], f"{r['write_seconds']:.0f}", f"{r['mean_rollback_checkpoints']:.2f}"]
        for r in results
    ]
    print(
        "\n"
        + format_table(
            ["policy", "total write seconds", "mean extra rollback (checkpoints)"],
            rows,
            title="Ablation — multilevel checkpointing cost vs rollback distance",
        )
    )
    pfs_only, multilevel = results
    # Multilevel writes are much cheaper in aggregate...
    assert multilevel["write_seconds"] < 0.6 * pfs_only["write_seconds"]
    # ...at the price of occasionally rolling back further than one checkpoint.
    assert multilevel["mean_rollback_checkpoints"] >= pfs_only["mean_rollback_checkpoints"]
