"""Benchmark: regenerate Figure 9 (Jacobi residual trajectories with lossy restarts)."""

from conftest import run_once

from repro.experiments import fig9_table, run_fig9


def test_bench_fig9_jacobi_trajectories(benchmark, bench_config):
    result = run_once(benchmark, run_fig9, bench_config)
    print("\n" + fig9_table(result))
    # The paper's claim: after a lossy recovery the Jacobi residual rejoins the
    # failure-free trajectory with no extra iterations.
    assert result.extra_iterations("1 lossy restart") <= 3
    assert result.extra_iterations("2 lossy restarts") <= 5
    # Residuals decrease overall along every trace.
    for label, trace in result.traces.items():
        assert trace[-1][1] < trace[0][1]
