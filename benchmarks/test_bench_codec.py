"""Microbenchmarks: v1 block codec vs the legacy whole-stream encoder.

Measures compression ratio and encode/decode throughput (MB/s) of the
pointwise-relative encoding pipeline on four workload shapes:

* ``solver`` — a converging-iterate-like vector (decaying smooth modes plus
  a small residual), the checkpoint payload the paper actually compresses,
* ``smooth`` — a random walk with tiny increments (best case for Lorenzo),
* ``noisy``  — white noise (worst case: codes are incompressible),
* ``outliers`` — smooth data with sparse huge spikes, the case the legacy
  global-bit-width encoder handles pathologically (every element pays the
  outlier's width) and the codec's escape channel is built for.

The legacy path is reconstructed here exactly as the pre-codec compressors
wrote it, including the nested DEFLATE stream inside the pw_rel frame, so
the comparison captures both fixes: blockwise widths + escapes (ratio) and
the single entropy pass (throughput).

Numbers are asserted qualitatively (codec ratio must beat legacy on the
outlier workload; encode must not be slower than the double-DEFLATE path)
and written to ``BENCH_codec.json`` (override the path with the
``BENCH_CODEC_JSON`` environment variable) so CI can track the trajectory.
"""

import json
import os
import time
import zlib

import numpy as np

from conftest import run_once

from repro.compression.codec import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_WIDTH_CAP,
    FORMAT_VERSION,
    decode_frame,
    decode_signed,
    encode_frame,
    encode_signed,
)
from repro.compression.encoding import (
    pack_sections,
    pack_unsigned,
    unpack_sections,
    unpack_unsigned,
    zigzag_decode,
    zigzag_encode,
)
from repro.compression.quantization import quantize_absolute
from repro.compression.relative import PointwiseRelativeTransform
from repro.compression.sz import SZCompressor, _predict_codes, _unpredict_codes

_EB = 1e-4
_N = 1 << 18
_REPEATS = 3
_ZLIB_LEVEL = 6


def _workloads():
    rng = np.random.default_rng(2018)
    t = np.linspace(0.0, 1.0, _N)
    modes = sum(
        np.sin((k + 1) * np.pi * t) / (k + 1) ** 2 for k in range(8)
    )
    solver = modes + 2.0 + 1e-6 * rng.standard_normal(_N)
    smooth = np.cumsum(rng.normal(0.0, 1e-3, _N)) + 10.0
    noisy = rng.standard_normal(_N) + 4.0
    outliers = smooth.copy()
    spikes = rng.choice(_N, _N // 1000, replace=False)
    outliers[spikes] *= 1e7
    return {"solver": solver, "smooth": smooth, "noisy": noisy, "outliers": outliers}


def _pw_rel_pieces(data):
    """Shared front half of the pw_rel pipeline (transform + quantize)."""
    transform = PointwiseRelativeTransform.forward(data, _EB)
    quantized = quantize_absolute(transform.log_values, transform.log_bound)
    residuals = _predict_codes(quantized.codes, 1)
    header = np.asarray([quantized.quantum], dtype=np.float64).tobytes()
    order = np.asarray([1], dtype=np.int64).tobytes()
    count = np.asarray([data.size], dtype=np.int64).tobytes()
    neg = np.packbits(transform.negative_mask.astype(np.uint8)).tobytes()
    zero = np.packbits(transform.zero_mask.astype(np.uint8)).tobytes()
    return (residuals, header, order, count, neg, zero), quantized.codes


def _legacy_encode(pieces):
    residuals, header, order, count, neg, zero = pieces
    inner = zlib.compress(
        pack_sections([header, order, pack_unsigned(zigzag_encode(residuals))]),
        _ZLIB_LEVEL,
    )
    return zlib.compress(pack_sections([count, inner, neg, zero]), _ZLIB_LEVEL)


def _legacy_decode(payload):
    count_b, inner, _, _ = unpack_sections(zlib.decompress(payload))
    _, order_b, packed = unpack_sections(zlib.decompress(inner))
    codes_unsigned, _ = unpack_unsigned(packed)
    return _unpredict_codes(
        zigzag_decode(codes_unsigned), int(np.frombuffer(order_b, np.int64)[0])
    )


def _codec_encode(pieces):
    residuals, header, order, count, neg, zero = pieces
    return encode_frame(
        [count, header, order, encode_signed(residuals), neg, zero],
        level=_ZLIB_LEVEL,
    )


def _codec_decode(payload):
    sections = decode_frame(payload)
    return _unpredict_codes(
        decode_signed(sections[3]), int(np.frombuffer(sections[2], np.int64)[0])
    )


def _best_seconds(fn, *args):
    best = float("inf")
    result = None
    for _ in range(_REPEATS):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return result, best


def _measure(data):
    raw_mb = data.nbytes / 1e6
    pieces, expected_codes = _pw_rel_pieces(data)
    rows = {}
    for name, encode, decode in (
        ("legacy", _legacy_encode, _legacy_decode),
        ("codec", _codec_encode, _codec_decode),
    ):
        payload, enc_s = _best_seconds(encode, pieces)
        codes, dec_s = _best_seconds(decode, payload)
        assert np.array_equal(codes, expected_codes), f"{name} round trip broke"
        rows[name] = {
            "bytes": len(payload),
            "ratio": round(data.nbytes / len(payload), 3),
            "encode_mbps": round(raw_mb / enc_s, 1),
            "decode_mbps": round(raw_mb / dec_s, 1),
            "encode_seconds": round(enc_s, 6),
        }
    comp = SZCompressor(_EB)
    blob, rec = comp.compress_with_record(data)
    recon = comp.decompress(blob)
    assert np.all(np.abs(recon - data) <= _EB * np.abs(data) * (1 + 1e-8))
    rows["sz_end_to_end"] = {
        "ratio": round(blob.compression_ratio, 3),
        "compress_mbps": round(raw_mb / rec.seconds, 1),
        "decompress_mbps": round(raw_mb / comp.last_record.seconds, 1),
    }
    rows["raw_mb"] = round(raw_mb, 3)
    return rows


def test_bench_codec_microbenchmarks(benchmark):
    results = run_once(
        benchmark, lambda: {name: _measure(data) for name, data in _workloads().items()}
    )

    report = {
        "format_version": FORMAT_VERSION,
        "block_size": DEFAULT_BLOCK_SIZE,
        "width_cap": DEFAULT_WIDTH_CAP,
        "elements_per_workload": _N,
        "error_bound": _EB,
        "workloads": results,
    }
    if os.environ.get("BENCH_EMIT_TIMESTAMP"):
        # Opt-in only: a wall-clock stamp makes every run a spurious diff of
        # the committed artifact, so the default output is deterministic in
        # everything but the measured rates.
        report["timestamp"] = time.time()
    out_path = os.environ.get("BENCH_CODEC_JSON", "BENCH_codec.json")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    header = f"{'workload':<10} {'enc':>7} {'ratio':>8} {'MB/s':>8}"
    print("\n" + header)
    for name, rows in results.items():
        for enc in ("legacy", "codec"):
            print(
                f"{name:<10} {enc:>7} {rows[enc]['ratio']:>8.2f} "
                f"{rows[enc]['encode_mbps']:>8.1f}"
            )

    for name, rows in results.items():
        # single entropy pass: never slower than double DEFLATE (amply padded
        # against CI timer noise; the real margin is much larger)
        assert rows["codec"]["encode_seconds"] <= rows["legacy"]["encode_seconds"] * 1.5, name
    # blockwise widths + escape channel: strictly better ratio on outliers
    assert results["outliers"]["codec"]["ratio"] >= results["outliers"]["legacy"]["ratio"]
    # and no ratio regression on the paper's bread-and-butter workload
    assert results["solver"]["codec"]["ratio"] >= results["solver"]["legacy"]["ratio"] * 0.98
