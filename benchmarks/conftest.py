"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index) with the DEFAULT experiment configuration, asserts the
qualitative claims (who wins, roughly by how much, where crossovers fall) and
prints the corresponding text table so `pytest benchmarks/ --benchmark-only -s`
reproduces the whole evaluation section in one go.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"))

from repro.experiments.config import DEFAULT_CONFIG  # noqa: E402


@pytest.fixture(scope="session")
def bench_config():
    """The configuration shared by all benchmark runs."""
    return DEFAULT_CONFIG.with_overrides(repetitions=6)


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
