"""Benchmark: regenerate Figure 3 (GMRES on the KKT system across scales)."""

from conftest import run_once

from repro.experiments import fig3_table, run_fig3


def test_bench_fig3_kkt_scaling(benchmark, bench_config):
    result = run_once(benchmark, run_fig3, bench_config)
    print("\n" + fig3_table(result))
    assert result.converged
    # Strong scaling: time decreases monotonically with the process count and
    # the largest run still takes on the order of an hour (paper: >1 h at 4,096).
    times = [result.modeled_seconds[p] for p in result.process_counts]
    assert all(b < a for a, b in zip(times, times[1:]))
    assert times[-1] > 3000.0
    assert times[0] > times[-1] * 2
