"""Benchmark: regenerate Figure 1 (expected overhead surface)."""

from conftest import run_once

from repro.experiments import fig1_table, run_fig1


def test_bench_fig1_overhead_surface(benchmark):
    result = run_once(benchmark, run_fig1)
    print("\n" + fig1_table(result))
    # Shape claims from the paper: ~40% overhead at hourly failures with a
    # 120 s checkpoint, and monotone growth in both failure rate and Tckp.
    assert 0.3 < result.at(1.0, 120.0) < 0.5
    assert result.at(3.5, 140.0) > result.at(0.25, 10.0)
    for row in result.overhead_fraction:
        assert all(b >= a for a, b in zip(row, row[1:]))
