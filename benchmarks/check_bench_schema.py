#!/usr/bin/env python
"""Sanity-check benchmark artifact schemas before CI uploads them.

The nightly benchmarks workflow writes ``BENCH_pipeline.json`` /
``BENCH_runner.json`` / ``BENCH_codec.json`` / ``BENCH_store.json`` and
uploads them as artifacts.
A refactor that silently stops populating a section would still upload a
syntactically valid — but empty — file, and the regression would only be
noticed when someone reads the artifact weeks later.  This checker fails
the job instead: each known artifact must parse, contain its expected
sections, and carry positive measured rates.

Usage::

    python benchmarks/check_bench_schema.py BENCH_pipeline.json [more.json...]

Exits non-zero with a per-file report when any check fails.  Not a pytest
file on purpose: it validates artifacts of a *previous* run, so it must not
be collected into the benchmark suite itself.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Callable, Dict, List


def _positive(row: dict, key: str, errors: List[str], context: str) -> None:
    value = row.get(key)
    if not isinstance(value, (int, float)) or not value > 0:
        errors.append(f"{context}: {key!r} should be a positive number, got {value!r}")


def _nonnegative_int(row: dict, key: str, errors: List[str], context: str) -> None:
    value = row.get(key)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        errors.append(f"{context}: {key!r} should be a non-negative integer, "
                      f"got {value!r}")


#: In-container snapshot-throughput floors (MB/s) per scheme.  The sharded,
#: byte-shuffled v2 compression stage is a throughput feature; a refactor
#: that quietly reverts to whole-buffer DEFLATE would still produce a
#: schema-valid artifact, so the checker pins the rates themselves.  The
#: seed measured ~26-30 MB/s lossless and ~60-66 MB/s lossy; the floors sit
#: between seed and current (quiet-container lossless >= 120, lossy >= 110)
#: to absorb CI load variance without ever re-admitting the seed rates.
_PIPELINE_MIN_SNAPSHOT_MB_S = {
    "lossless": 60.0,
    "lossy": 100.0,
    "lossy-adaptive": 100.0,
}


def check_pipeline(data: dict) -> List[str]:
    """``BENCH_pipeline.json``: scheme x solver snapshot/restore throughput."""
    errors: List[str] = []
    combos = data.get("combinations")
    if not isinstance(combos, dict) or not combos:
        return ["'combinations' must be a non-empty object"]
    for name, row in combos.items():
        if not isinstance(row, dict):
            errors.append(f"combination {name!r} is not an object")
            continue
        for key in ("snapshot_mb_per_s", "restore_mb_per_s", "checkpoints_per_s",
                    "payload_bytes", "dynamic_bytes"):
            _positive(row, key, errors, f"combination {name!r}")
        for key in ("scheme", "method"):
            if not row.get(key):
                errors.append(f"combination {name!r}: missing {key!r}")
        threads = row.get("compress_threads")
        if not isinstance(threads, int) or threads < 1:
            errors.append(f"combination {name!r}: 'compress_threads' should be "
                          f"a positive integer, got {threads!r}")
        version = row.get("format_version")
        if not isinstance(version, int) or version < 0:
            errors.append(f"combination {name!r}: 'format_version' should be "
                          f"a non-negative integer, got {version!r}")
        floor = _PIPELINE_MIN_SNAPSHOT_MB_S.get(row.get("scheme"))
        rate = row.get("snapshot_mb_per_s")
        if (floor is not None and isinstance(rate, (int, float)) and 0 < rate < floor):
            errors.append(f"combination {name!r}: snapshot_mb_per_s {rate:.1f} "
                          f"is below the {row['scheme']} floor of {floor:g} MB/s")
    schemes = {row.get("scheme") for row in combos.values() if isinstance(row, dict)}
    if len(schemes) < 2:
        errors.append(f"expected several schemes, found {sorted(map(str, schemes))}")
    return errors


#: Per-series event-throughput floors (events/s) for the runner benchmark,
#: mirroring the pipeline snapshot floors above.  The trajectory-replay cache
#: is a throughput feature: a refactor that quietly stopped replaying (or
#: broke the event calendar) would still produce a schema-valid artifact.
#: The floors are set *below* the replay-off rates (seed measured ~19.3k /
#: 16.4k events/s on the traditional series and ~3.6-4.0k on the lossy ones),
#: so both the replay-on and the ``REPRO_REPLAY=off`` comparison artifact
#: pass on a loaded CI host while a real event-loop regression still fails.
_RUNNER_MIN_EVENTS_PER_S = {
    "traditional-poisson": 5000.0,
    "traditional-poisson-async": 4000.0,
    "lossy-poisson": 1000.0,
    "lossy-poisson-async": 1000.0,
    "lossy-weibull-fti": 1000.0,
}


def check_runner(data: dict) -> List[str]:
    """``BENCH_runner.json``: per-scenario event-loop throughput."""
    errors: List[str] = []
    scenarios = data.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        return ["'scenarios' must be a non-empty object"]
    for name, row in scenarios.items():
        if not isinstance(row, dict):
            errors.append(f"scenario {name!r} is not an object")
            continue
        _positive(row, "iterations_per_second", errors, f"scenario {name!r}")
        _positive(row, "total_iterations", errors, f"scenario {name!r}")
        # The event-calendar engine reports how many sequence numbers its
        # calendars claimed; a refactor that stops counting would zero this.
        _positive(row, "events_per_second", errors, f"scenario {name!r}")
        # Trajectory-replay accounting: zero is legal (REPRO_REPLAY=off runs
        # write the comparison artifact), but the fields must be present —
        # a missing counter means the harness stopped reporting the cache.
        _nonnegative_int(row, "replay_hits", errors, f"scenario {name!r}")
        _nonnegative_int(row, "replay_iterations_saved", errors,
                         f"scenario {name!r}")
        if row.get("converged") is not True:
            errors.append(f"scenario {name!r}: run did not converge")
        floor = _RUNNER_MIN_EVENTS_PER_S.get(name)
        rate = row.get("events_per_second")
        if (floor is not None and isinstance(rate, (int, float))
                and 0 < rate < floor):
            errors.append(f"scenario {name!r}: events_per_second {rate:.0f} "
                          f"is below the floor of {floor:g} events/s")
    modes = {name.endswith("-async") for name in scenarios}
    if modes != {True, False}:
        errors.append("expected both blocking and -async scenario series")
    return errors


def check_codec(data: dict) -> List[str]:
    """``BENCH_codec.json``: per-workload codec-vs-legacy measurements."""
    errors: List[str] = []
    workloads = data.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        return ["'workloads' must be a non-empty object"]
    for name, rows in workloads.items():
        if not isinstance(rows, dict):
            errors.append(f"workload {name!r} is not an object")
            continue
        for encoder in ("legacy", "codec"):
            row = rows.get(encoder)
            if not isinstance(row, dict):
                errors.append(f"workload {name!r}: missing {encoder!r} row")
                continue
            for key in ("ratio", "encode_mbps", "decode_mbps"):
                _positive(row, key, errors, f"workload {name!r}/{encoder}")
    return errors


def check_store(data: dict) -> List[str]:
    """``BENCH_store.json``: per-backend throughput, pricing and dedup."""
    errors: List[str] = []
    backends = data.get("backends")
    if not isinstance(backends, dict) or not backends:
        return ["'backends' must be a non-empty object"]
    for name, row in backends.items():
        if not isinstance(row, dict):
            errors.append(f"backend {name!r} is not an object")
            continue
        for key in ("write_mb_per_s", "read_mb_per_s", "modeled_write_seconds",
                    "modeled_read_seconds", "dedup_ratio"):
            _positive(row, key, errors, f"backend {name!r}")
        if not row.get("durability"):
            errors.append(f"backend {name!r}: missing 'durability'")
    modeled = [row.get("modeled_write_seconds") for row in backends.values()
               if isinstance(row, dict)]
    if len(set(modeled)) < len(modeled):
        errors.append("modeled_write_seconds must be distinct per backend "
                      "(the priced profiles are the point of the artifact)")
    chunked = backends.get("chunked")
    if isinstance(chunked, dict):
        ratio = chunked.get("dedup_ratio")
        if not isinstance(ratio, (int, float)) or not ratio > 1.0:
            errors.append(f"backend 'chunked': dedup_ratio should exceed 1, "
                          f"got {ratio!r}")
    else:
        errors.append("missing 'chunked' backend row")
    return errors


CHECKERS: Dict[str, Callable[[dict], List[str]]] = {
    "BENCH_pipeline.json": check_pipeline,
    "BENCH_runner.json": check_runner,
    "BENCH_codec.json": check_codec,
    "BENCH_store.json": check_store,
}


def _resolve_checker(name: str) -> Callable[[dict], List[str]]:
    """Map an artifact filename to its schema checker.

    Exact names win; variant artifacts that extend a known base name with an
    underscore-suffixed qualifier (e.g. ``BENCH_runner_replay_off.json``, the
    replay-disabled comparison run the benchmarks workflow uploads alongside
    ``BENCH_runner.json``) share the base schema.
    """
    if name in CHECKERS:
        return CHECKERS[name]
    for known, checker in CHECKERS.items():
        base = known[: -len(".json")]
        if name.startswith(base + "_") and name.endswith(".json"):
            return checker
    raise KeyError(name)


def check_file(path: Path) -> List[str]:
    """All schema errors for one artifact (empty list = valid)."""
    try:
        checker = _resolve_checker(path.name)
    except KeyError:
        return [f"no schema registered for {path.name!r} "
                f"(known: {sorted(CHECKERS)})"]
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        return [f"cannot read: {exc}"]
    except json.JSONDecodeError as exc:
        return [f"not valid JSON: {exc}"]
    if not isinstance(data, dict):
        return ["top level must be a JSON object"]
    return checker(data)


def main(argv: List[str]) -> int:
    if not argv:
        print(f"usage: {Path(__file__).name} BENCH_*.json [BENCH_*.json ...]",
              file=sys.stderr)
        return 2
    failed = False
    for name in argv:
        errors = check_file(Path(name))
        if errors:
            failed = True
            print(f"FAIL {name}")
            for error in errors:
                print(f"  - {error}")
        else:
            print(f"ok   {name}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
