"""Microbenchmarks: checkpoint-store backends (throughput, pricing, dedup).

Writes a slowly-mutating checkpoint series (the payload shape the engine's
delta pipeline produces: most chunks repeat between consecutive
checkpoints) through every store backend and measures

* real host throughput (MB/s for write and read-back, wall clock),
* the *modeled* seconds the backend's :class:`StoreProfile` prices for the
  same traffic — the number the engine actually charges, which must differ
  per backend (that is the whole point of the profiles), and
* the chunked backend's dedup ratio on the series.

Results go to ``BENCH_store.json`` (override with the ``BENCH_STORE_JSON``
environment variable) and are validated by ``check_bench_schema.py`` in CI.
"""

import json
import os
import time

import numpy as np

from conftest import run_once

from repro.checkpoint.chunked import ChunkedStore
from repro.checkpoint.store import (
    FileCheckpointStore,
    MemoryCheckpointStore,
    SimulatedObjectStore,
)

_PAYLOAD_BYTES = 1 << 20  # 1 MiB per checkpoint
_NUM_CHECKPOINTS = 8
_MUTATED_FRACTION = 0.1  # fraction of each payload rewritten per step
_NUM_PROCESSES = 2048


def _payload_series():
    """A checkpoint series where ~10% of the bytes change per step."""
    rng = np.random.default_rng(2018)
    buffer = rng.integers(0, 256, _PAYLOAD_BYTES, dtype=np.uint8)
    series = []
    span = int(_PAYLOAD_BYTES * _MUTATED_FRACTION)
    for step in range(_NUM_CHECKPOINTS):
        start = int(rng.integers(0, _PAYLOAD_BYTES - span))
        buffer[start : start + span] = rng.integers(0, 256, span, dtype=np.uint8)
        series.append(buffer.tobytes())
    return series


def _backends(tmp_path):
    return {
        "memory": MemoryCheckpointStore(),
        "disk": FileCheckpointStore(tmp_path / "disk"),
        "object": SimulatedObjectStore(),
        "chunked": ChunkedStore(SimulatedObjectStore()),
    }


def _measure(store, series):
    total_mb = sum(len(p) for p in series) / 1e6
    start = time.perf_counter()
    for i, payload in enumerate(series):
        store.write(i, payload)
    write_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for i, payload in enumerate(series):
        assert store.read(i) == payload  # read-back is also a correctness check
    read_seconds = time.perf_counter() - start

    profile = store.profile
    nbytes = float(sum(len(p) for p in series))
    # A dedup backend only ships its unique bytes — price what travels,
    # exactly as the engine does.
    shipped = nbytes
    dedup_stats = getattr(store, "dedup_stats", None)
    stats = dedup_stats() if dedup_stats is not None else None
    if stats is not None:
        shipped = stats["unique_bytes"]
    row = {
        "backend": profile.name,
        "durability": profile.durability,
        "write_mb_per_s": round(total_mb / max(write_seconds, 1e-9), 1),
        "read_mb_per_s": round(total_mb / max(read_seconds, 1e-9), 1),
        "modeled_write_seconds": profile.write_seconds(shipped, _NUM_PROCESSES),
        "modeled_read_seconds": profile.read_seconds(nbytes, _NUM_PROCESSES),
        "modeled_drain_seconds": profile.drain_seconds(shipped, _NUM_PROCESSES),
        "dedup_ratio": 1.0,
    }
    if stats is not None:
        row["dedup_ratio"] = round(stats["dedup_ratio"], 3)
        row["unique_bytes"] = stats["unique_bytes"]
        row["logical_bytes"] = stats["logical_bytes"]
    return row


def test_bench_store_backends(benchmark, tmp_path):
    series = _payload_series()
    results = run_once(
        benchmark,
        lambda: {
            name: _measure(store, series)
            for name, store in _backends(tmp_path).items()
        },
    )

    report = {
        "payload_bytes": _PAYLOAD_BYTES,
        "num_checkpoints": _NUM_CHECKPOINTS,
        "mutated_fraction": _MUTATED_FRACTION,
        "num_processes": _NUM_PROCESSES,
        "backends": results,
    }
    if os.environ.get("BENCH_EMIT_TIMESTAMP"):
        # Opt-in only: a wall-clock stamp makes every run a spurious diff of
        # the committed artifact, so the default output is deterministic in
        # everything but the measured rates.
        report["timestamp"] = time.time()
    out_path = os.environ.get("BENCH_STORE_JSON", "BENCH_store.json")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    header = (
        f"{'backend':<10} {'write MB/s':>11} {'read MB/s':>10} "
        f"{'modeled s':>10} {'dedup':>6}"
    )
    print("\n" + header)
    for name, row in results.items():
        print(
            f"{name:<10} {row['write_mb_per_s']:>11.1f} "
            f"{row['read_mb_per_s']:>10.1f} "
            f"{row['modeled_write_seconds']:>10.2f} {row['dedup_ratio']:>6.2f}"
        )

    # The priced profiles are what distinguish the backends: every backend
    # must charge a different modeled time for identical traffic.
    modeled = [row["modeled_write_seconds"] for row in results.values()]
    assert len(set(modeled)) == len(modeled)
    assert (
        results["memory"]["modeled_write_seconds"]
        < results["disk"]["modeled_write_seconds"]
        < results["object"]["modeled_write_seconds"]
    )
    # A 10%-mutation series dedups well above 1x on the chunked backend.
    assert results["chunked"]["dedup_ratio"] > 1.0
    assert results["memory"]["dedup_ratio"] == 1.0
    # Durability scopes survive into the artifact for the docs table.
    assert results["memory"]["durability"] == "process"
    assert results["object"]["durability"] == "system"
