"""Microbenchmark: checkpoint-pipeline snapshot/restore throughput.

Times :meth:`~repro.checkpoint.pipeline.CheckpointPipeline.snapshot` (the
full per-variable compress + serialize path) and
:meth:`~repro.checkpoint.pipeline.CheckpointPipeline.restore` on a mid-run
solver state for every scheme × solver combination, reporting **MB/s of
dynamic state pushed through the pipeline** and **checkpoints per second**.
This is the hot path of every engine run under measured costing, so its
throughput trajectory is worth tracking across PRs.

Numbers go to ``BENCH_pipeline.json`` (override with the
``BENCH_PIPELINE_JSON`` environment variable); the nightly benchmarks
workflow uploads the file as an artifact.  The pipeline times itself
internally (perf_counter), so the file carries real rates even under
``--benchmark-disable``.
"""

import json
import os
import time

import numpy as np
from conftest import run_once

from repro.checkpoint import CheckpointPipeline
from repro.checkpoint.serialization import deserialize_checkpoint
from repro.compression.base import CompressedBlob
from repro.compression.sharded import resolve_threads
from repro.core.schemes import CheckpointingScheme
from repro.solvers import BiCGStabSolver, CGSolver, GMRESSolver, JacobiSolver
from repro.sparse import poisson_system

_REPEATS = 5
_SNAPSHOTS_PER_REPEAT = 20

_SOLVERS = {
    "jacobi": lambda A: JacobiSolver(A, rtol=1e-4, max_iter=100000),
    "cg": lambda A: CGSolver(A, rtol=1e-7, max_iter=100000),
    "gmres": lambda A: GMRESSolver(A, rtol=7e-5, max_iter=100000),
    "bicgstab": lambda A: BiCGStabSolver(A, rtol=1e-7, max_iter=100000),
}

_SCHEMES = {
    "traditional": CheckpointingScheme.traditional,
    "lossless": CheckpointingScheme.lossless,
    "lossy": lambda: CheckpointingScheme.lossy(1e-4),
    "lossy-adaptive": lambda: CheckpointingScheme.lossy(1e-4, adaptive=True),
}


def _payload_format_version(payload: bytes) -> int:
    """Highest blob payload-format version carried by a serialized checkpoint."""
    entries = deserialize_checkpoint(payload).entries.values()
    versions = [e.format_version for e in entries if isinstance(e, CompressedBlob)]
    return max(versions, default=0)


def _mid_run_state(solver, b, iterations=25):
    states = []
    solver.solve(b, callback=lambda s: states.append(s), max_iter=iterations)
    for state in reversed(states):
        if solver.capture_resume_state(state) is not None:
            return state
    return states[-1]


def _measure():
    problem = poisson_system(20, seed=42)
    b_norm = float(np.linalg.norm(problem.b))
    report = {"n": int(problem.A.shape[0]), "combinations": {}}
    for method, solver_factory in _SOLVERS.items():
        solver = solver_factory(problem.A)
        state = _mid_run_state(solver, problem.b)
        resume = solver.capture_resume_state(state)
        for scheme_name, scheme_factory in _SCHEMES.items():
            scheme = scheme_factory()
            pipeline = CheckpointPipeline(scheme, solver=solver)
            kwargs = dict(
                iteration=state.iteration,
                resume_state=resume if scheme.checkpoint_krylov_state else None,
                residual_norm=state.residual_norm,
                b_norm=b_norm,
            )
            snap = pipeline.snapshot(state.x, **kwargs)
            dynamic_bytes = snap.uncompressed_bytes
            best_snap = best_restore = None
            for _ in range(_REPEATS):
                start = time.perf_counter()
                for _ in range(_SNAPSHOTS_PER_REPEAT):
                    snap = pipeline.snapshot(state.x, **kwargs)
                elapsed = (time.perf_counter() - start) / _SNAPSHOTS_PER_REPEAT
                best_snap = elapsed if best_snap is None else min(best_snap, elapsed)
                start = time.perf_counter()
                for _ in range(_SNAPSHOTS_PER_REPEAT):
                    restored = pipeline.restore(payload=snap.payload)
                elapsed = (time.perf_counter() - start) / _SNAPSHOTS_PER_REPEAT
                best_restore = (
                    elapsed if best_restore is None else min(best_restore, elapsed)
                )
            assert restored.x.shape == state.x.shape
            report["combinations"][f"{scheme_name}/{method}"] = {
                "scheme": scheme_name,
                "method": method,
                "dynamic_bytes": int(dynamic_bytes),
                "payload_bytes": int(snap.serialized_bytes),
                "compression_ratio": float(snap.compression_ratio),
                "vectors": len(snap.vector_measurements),
                "snapshot_seconds": best_snap,
                "restore_seconds": best_restore,
                "snapshot_mb_per_s": dynamic_bytes / best_snap / 1024**2,
                "restore_mb_per_s": dynamic_bytes / best_restore / 1024**2,
                "checkpoints_per_s": 1.0 / best_snap,
                "compress_threads": resolve_threads(),
                "format_version": _payload_format_version(snap.payload),
            }
    report["threads_sweep"] = _measure_threads_sweep(problem, b_norm)
    return report


def _measure_threads_sweep(problem, b_norm):
    """Snapshot throughput of the heaviest lossless cell at 1 vs 4 shard threads.

    In the nightly container the sweep mostly documents that threading is
    *safe*: payload bytes must be identical for every worker count (the RSF2
    frame is deterministic by construction), and wall time must not regress
    catastrophically when threads exceed cores.
    """
    solver = _SOLVERS["bicgstab"](problem.A)
    state = _mid_run_state(solver, problem.b)
    resume = solver.capture_resume_state(state)
    rows = []
    reference_payload = None
    for threads in (1, 4):
        scheme = CheckpointingScheme.lossless()
        # Compressors default to threads=None, so the environment variable
        # below is the single control surface for the whole pipeline.
        pipeline = CheckpointPipeline(scheme, solver=solver)
        kwargs = dict(
            iteration=state.iteration,
            resume_state=resume,
            residual_norm=state.residual_norm,
            b_norm=b_norm,
        )
        os.environ["REPRO_COMPRESS_THREADS"] = str(threads)
        try:
            snap = pipeline.snapshot(state.x, **kwargs)
            best = None
            for _ in range(_REPEATS):
                start = time.perf_counter()
                for _ in range(_SNAPSHOTS_PER_REPEAT):
                    snap = pipeline.snapshot(state.x, **kwargs)
                elapsed = (time.perf_counter() - start) / _SNAPSHOTS_PER_REPEAT
                best = elapsed if best is None else min(best, elapsed)
        finally:
            del os.environ["REPRO_COMPRESS_THREADS"]
        if reference_payload is None:
            reference_payload = snap.payload
        rows.append(
            {
                "threads": threads,
                "payload_bytes": int(snap.serialized_bytes),
                "payload_identical": bool(snap.payload == reference_payload),
                "snapshot_mb_per_s": snap.uncompressed_bytes / best / 1024**2,
            }
        )
    return rows


def test_bench_pipeline_throughput(benchmark):
    report = run_once(benchmark, _measure)

    out_path = os.environ.get("BENCH_PIPELINE_JSON", "BENCH_pipeline.json")
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    rows = report["combinations"]
    assert len(rows) == len(_SOLVERS) * len(_SCHEMES)
    for name, row in rows.items():
        # Every combination must push state through at a usable rate and the
        # payload must actually carry the declared state.
        assert row["checkpoints_per_s"] > 5.0, name
        assert row["snapshot_mb_per_s"] > 1.0, name
        assert row["payload_bytes"] > 0, name
        assert row["compress_threads"] >= 1, name
        # Compressing schemes write sharded v2 payloads; traditional stores raw.
        if row["scheme"] == "traditional":
            assert row["format_version"] < 2, name
        else:
            assert row["format_version"] == 2, name
    # Thread count must never change payload bytes (deterministic framing).
    sweep = report["threads_sweep"]
    assert [row["threads"] for row in sweep] == [1, 4]
    assert all(row["payload_identical"] for row in sweep)
    # The measured payload composition: BiCGSTAB-exact stores 5 vectors.
    assert rows["traditional/bicgstab"]["vectors"] == 5
    assert rows["lossy/bicgstab"]["vectors"] == 1
    # Lossy checkpoints are smaller than traditional ones on solver iterates.
    assert (
        rows["lossy/jacobi"]["payload_bytes"]
        < rows["traditional/jacobi"]["payload_bytes"]
    )
