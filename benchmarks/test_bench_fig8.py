"""Benchmark: regenerate Figure 8 (convergence iterations, lossy vs failure-free)."""

from conftest import run_once

from repro.experiments import fig8_table, run_fig8


def test_bench_fig8_convergence_iterations(benchmark, bench_config):
    result = run_once(benchmark, run_fig8, bench_config)
    print("\n" + fig8_table(result))
    for procs in result.process_counts:
        # Jacobi: lossy checkpointing introduces no convergence delay.
        assert result.delay_fraction("jacobi", procs) <= 0.02
        # GMRES with the Theorem-3 adaptive bound: no delay beyond a restart
        # cycle's worth of iterations at this reduced scale.
        assert result.delay_fraction("gmres", procs) <= 0.5
        # CG: restarted CG is delayed, but converges (paper: ~25% on average).
        assert 0.0 <= result.delay_fraction("cg", procs) <= 0.6
    # CG is the method that pays a visible delay, as in the paper.
    worst_cg = max(result.delay_fraction("cg", p) for p in result.process_counts)
    worst_jacobi = max(result.delay_fraction("jacobi", p) for p in result.process_counts)
    assert worst_cg >= worst_jacobi
