"""Ablation: error-bound sweep for all three method families.

The paper sweeps the bound only for CG (Fig. 2); this ablation extends the
sweep to Jacobi and GMRES, confirming the per-family impact analysis of
Section 4.4 (Jacobi ~ 0 extra iterations, GMRES ~ 0 with the adaptive policy,
CG 10-25%).
"""

import numpy as np
from conftest import run_once

from repro.compression import SZCompressor
from repro.core import measure_extra_iterations
from repro.experiments.config import method_problem, method_solver
from repro.utils.tables import format_table

BOUNDS = (1e-3, 1e-4, 1e-5)


def test_bench_ablation_error_bound_sweep(benchmark, bench_config):
    def sweep():
        results = {}
        for method in ("jacobi", "gmres", "cg"):
            problem = method_problem(bench_config, method)
            solver = method_solver(bench_config, method, problem)
            for eb in BOUNDS:
                study = measure_extra_iterations(
                    solver, problem.b, SZCompressor(eb), trials=6,
                    seed=bench_config.seed + int(-np.log10(eb)),
                )
                results[(method, eb)] = study
        return results

    results = run_once(benchmark, sweep)
    rows = []
    for (method, eb), study in results.items():
        rows.append(
            [method, f"{eb:.0e}", f"{study.mean_extra_iterations:.1f}",
             f"{100 * study.mean_extra_fraction:.1f}%"]
        )
    print(
        "\n"
        + format_table(
            ["method", "error bound", "mean extra iters", "mean extra %"],
            rows,
            title="Ablation — extra iterations per lossy recovery vs error bound",
        )
    )
    for eb in BOUNDS:
        jacobi = results[("jacobi", eb)]
        cg = results[("cg", eb)]
        # Section 4.4: the stationary method suffers little delay (the bound of
        # Theorem 2 at the reduced grid's spectral radius allows a few percent
        # at eb = 1e-3), while restarted CG pays a visible but bounded delay.
        assert jacobi.mean_extra_fraction <= 0.10
        assert cg.mean_extra_fraction <= 0.5
    # At the paper's bound (1e-4) Jacobi's delay is essentially zero.
    assert results[("jacobi", 1e-4)].mean_extra_fraction <= 0.02
