"""Microbenchmark: event-loop throughput of the fault-tolerance engine.

Times ``FaultToleranceEngine.run()`` end to end (real reduced-size solves
driving the virtual timeline) and reports *simulated iterations per second* —
the rate at which the engine can push solver iterations through the
compute/checkpoint/failure/recovery event machinery.  Three regimes are
measured:

* ``traditional-poisson`` — exact scheme, inline failure handling
  (recovery + rollback are pure clock arithmetic),
* ``lossy-poisson`` — the paper's lossy scheme with solve interrupts and
  restarts,
* ``lossy-weibull-fti`` — the heaviest blocking path: clustered failures
  plus multilevel checkpoint bookkeeping and survival draws,
* ``traditional-poisson-async`` / ``lossy-poisson-async`` — the two-channel
  timeline: overlapped I/O-channel drains, dirty-write settlement and
  incremental delta payloads, so the event loop's throughput is tracked for
  both write modes.

Numbers go to ``BENCH_runner.json`` (override with the ``BENCH_RUNNER_JSON``
environment variable); the nightly benchmarks workflow uploads the file as
an artifact so the engine's throughput trajectory is tracked across PRs.
The engine times itself internally (perf_counter), so the file carries real
rates even under ``--benchmark-disable``.

The trajectory-replay cache (:mod:`repro.engine.replay`) is exercised at its
default setting: the first repeat of each scenario records, later repeats
replay, and best-of-3 therefore reports the replayed rate.  Each row carries
``replay_hits`` / ``replay_iterations_saved`` from the final (warm) repeat;
the workflow runs the series a second time under ``REPRO_REPLAY=off`` into
``BENCH_runner_replay_off.json`` so the speedup is tracked per commit.
"""

import json
import os
import time

from conftest import run_once

from repro.cluster.machine import ClusterModel
from repro.engine import FaultToleranceEngine as FaultTolerantRunner
from repro.engine import run_failure_free
from repro.core.scale import paper_scale
from repro.core.schemes import CheckpointingScheme
from repro.engine import Scenario
from repro.solvers import JacobiSolver
from repro.sparse import poisson_system

_REPEATS = 3

_SCENARIOS = {
    "traditional-poisson": (CheckpointingScheme.traditional, Scenario()),
    "lossy-poisson": (lambda: CheckpointingScheme.lossy(1e-4), Scenario()),
    "lossy-weibull-fti": (
        lambda: CheckpointingScheme.lossy(1e-4),
        Scenario(failure_model="weibull", recovery_levels="fti"),
    ),
    "traditional-poisson-async": (
        CheckpointingScheme.traditional,
        Scenario(write_mode="async"),
    ),
    "lossy-poisson-async": (
        lambda: CheckpointingScheme.lossy(1e-4),
        Scenario(write_mode="async"),
    ),
}


def _measure():
    problem = poisson_system(8, seed=42)
    solver = JacobiSolver(problem.A, rtol=1e-4, max_iter=100000)
    baseline = run_failure_free(solver, problem.b)
    cluster = ClusterModel(num_processes=2048)
    scale = paper_scale(2048)
    iteration_seconds = cluster.calibrated_iteration_time("jacobi", baseline.iterations)

    report = {"baseline_iterations": baseline.iterations, "scenarios": {}}
    for name, (scheme_factory, scenario) in _SCENARIOS.items():
        best = None
        last_run = None
        events_processed = 0
        replay_hits = 0
        replay_iterations_saved = 0
        for repeat in range(_REPEATS):
            engine = FaultTolerantRunner(
                solver,
                problem.b,
                scheme_factory(),
                cluster=cluster,
                scale=scale,
                mtti_seconds=300.0,
                checkpoint_interval_seconds=120.0,
                iteration_seconds=iteration_seconds,
                baseline=baseline,
                seed=2018,
                scenario=scenario,
            )
            start = time.perf_counter()
            last_run = engine.run()
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
            # Deterministic per scenario (same seed every repeat), so the
            # last repeat's count pairs correctly with the best elapsed.
            events_processed = engine.events_processed
            # The final repeat runs against a warm trajectory cache, which
            # is the regime the best-of-N elapsed time measures.
            replay_hits = engine.replay_hits
            replay_iterations_saved = engine.replay_iterations_saved
        report["scenarios"][name] = {
            "seconds": best,
            "total_iterations": last_run.total_iterations,
            "iterations_per_second": last_run.total_iterations / best,
            "events_processed": events_processed,
            "events_per_second": events_processed / best,
            "num_failures": last_run.num_failures,
            "num_checkpoints": last_run.num_checkpoints,
            "converged": last_run.converged,
            "replay_hits": replay_hits,
            "replay_iterations_saved": replay_iterations_saved,
        }
    return report


def test_bench_runner_event_loop(benchmark):
    report = run_once(benchmark, _measure)

    for name, row in report["scenarios"].items():
        # The engine must actually exercise the failure machinery and still
        # push iterations through at a usable simulation rate.
        assert row["converged"], name
        assert row["num_failures"] > 0, name
        assert row["num_checkpoints"] > 0, name
        assert row["iterations_per_second"] > 50.0, name

    out_path = os.environ.get("BENCH_RUNNER_JSON", "BENCH_runner.json")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    print()
    print("engine event-loop throughput (simulated iterations/s)")
    for name, row in sorted(report["scenarios"].items()):
        print(
            f"  {name:24s} {row['iterations_per_second']:10.0f} it/s  "
            f"({row['total_iterations']} iterations, {row['num_failures']} failures, "
            f"{row['num_checkpoints']} checkpoints)"
        )
