"""Benchmark: regenerate Table 3 (per-process checkpoint sizes)."""

from conftest import run_once

from repro.experiments import run_table3, table3_table


def test_bench_table3_checkpoint_sizes(benchmark, bench_config):
    result = run_once(benchmark, run_table3, bench_config)
    print("\n" + table3_table(result))
    for procs in result.process_counts:
        for method in result.methods:
            trad = result.size_mb(procs, method, "traditional")
            lossless = result.size_mb(procs, method, "lossless")
            lossy = result.size_mb(procs, method, "lossy")
            # Ordering and magnitude claims of Table 3.
            assert lossy < lossless <= trad * 1.01
            assert lossy < 0.5 * trad
    # Traditional checkpoints are ~38 MB/process (one vector) and CG doubles that.
    assert 30 < result.size_mb(2048, "jacobi", "traditional") < 45
    assert 60 < result.size_mb(2048, "cg", "traditional") < 90
    # Lossy compression achieves clearly higher ratios than lossless on every method.
    for method in result.methods:
        assert result.ratios[(method, "lossy")] > 2 * result.ratios[(method, "lossless")]
