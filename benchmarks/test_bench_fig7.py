"""Benchmark: regenerate Figure 7 (expected overhead across scales, 2 MTTIs)."""

from conftest import run_once

from repro.experiments import fig7_table, run_fig7


def test_bench_fig7_expected_overhead(benchmark, bench_config):
    result = run_once(benchmark, run_fig7, bench_config)
    print("\n" + fig7_table(result))
    largest = max(result.process_counts)
    smallest = min(result.process_counts)
    for mtti in result.mtti_hours:
        for procs in result.process_counts:
            for method in ("jacobi", "gmres"):
                # Lossy checkpointing is expected to win at every scale for
                # Jacobi and GMRES (N' ~ 0).
                assert result.value(mtti, procs, method, "lossy") < result.value(
                    mtti, procs, method, "traditional"
                )
        # Overheads grow with scale under weak scaling.
        assert result.value(mtti, largest, "jacobi", "traditional") > result.value(
            mtti, smallest, "jacobi", "traditional"
        )
    # CG's crossover: lossy wins at the largest scales for MTTI = 1 h even with
    # the 25% extra-iteration penalty (paper: crossover around 768-1536 procs).
    assert result.value(1.0, largest, "cg", "lossy") < result.value(
        1.0, largest, "cg", "traditional"
    )
    # Lower failure rate (3 h MTTI) lowers every overhead.
    assert result.value(3.0, largest, "gmres", "traditional") < result.value(
        1.0, largest, "gmres", "traditional"
    )
