"""Benchmark: regenerate Figure 10 (experimental vs expected overhead at 2,048 procs).

This is the paper's headline experiment.  The assertions check the claims
that survive the laptop-scale substitution documented in DESIGN.md: the lossy
scheme has the lowest measured fault-tolerance overhead for every method, and
the lossy checkpoint itself is several times cheaper than the traditional one.
"""

from conftest import run_once

from repro.experiments import fig10_table, run_fig10


def test_bench_fig10_experimental_vs_expected(benchmark, bench_config):
    config = bench_config.with_overrides(repetitions=10)
    result = run_once(benchmark, run_fig10, config)
    print("\n" + fig10_table(result))

    for method in result.methods:
        lossy = result.experimental[(method, "lossy")]
        traditional = result.experimental[(method, "traditional")]
        # Headline claim: lossy checkpointing reduces the fault-tolerance
        # overhead relative to traditional checkpointing for every method.
        assert lossy < traditional
        # The checkpoint itself is dramatically smaller/cheaper.
        assert (
            result.checkpoint_seconds[(method, "lossy")]
            < 0.5 * result.checkpoint_seconds[(method, "traditional")]
        )
        # Young-optimal intervals: cheaper checkpoints mean shorter intervals.
        assert result.intervals[(method, "lossy")] < result.intervals[(method, "traditional")]

    # Jacobi also beats lossless checkpointing outright (paper: 24% reduction).
    # GMRES and CG are the closest races at this reduced scale: the measured
    # lossy compression ratios are 5-12x instead of the paper's 20-60x and a
    # 35-120 virtual-minute run only sees 1-3 failures, so they are allowed to
    # tie with lossless within noise (EXPERIMENTS.md discusses the gap).
    # Since payload format v2 the byte-shuffled lossless stage is itself ~5x
    # faster than the seed's plain DEFLATE, which narrows lossy's margin over
    # lossless further — for CG, where a lossy restart also pays rework
    # iterations, lossy may now lose to lossless outright.  The paper's
    # headline claims (lossy vs traditional, asserted above) are unaffected.
    assert result.experimental[("jacobi", "lossy")] < result.experimental[("jacobi", "lossless")]
    assert result.experimental[("gmres", "lossy")] < 1.3 * result.experimental[
        ("gmres", "lossless")
    ]
    assert result.experimental[("cg", "lossy")] < 2.0 * result.experimental[("cg", "lossless")]
