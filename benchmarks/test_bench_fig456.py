"""Benchmark: regenerate Figures 4, 5 and 6 (checkpoint/recovery times)."""

import pytest
from conftest import run_once

from repro.experiments import fig456_table, run_fig456


@pytest.mark.parametrize("method", ["jacobi", "gmres", "cg"])
def test_bench_fig456_checkpoint_recovery_times(benchmark, bench_config, method):
    result = run_once(benchmark, run_fig456, bench_config, method=method)
    print("\n" + fig456_table(result))
    first, last = result.process_counts[0], result.process_counts[-1]
    for procs in result.process_counts:
        # Lossy checkpointing is the cheapest at every scale, for both the
        # checkpoint write and the recovery read.
        assert result.checkpoint(procs, "lossy") < result.checkpoint(procs, "lossless")
        assert result.checkpoint(procs, "lossless") <= result.checkpoint(procs, "traditional")
        assert result.recovery(procs, "lossy") < result.recovery(procs, "traditional")
    # Times grow roughly linearly with scale (weak scaling, fixed PFS bandwidth).
    assert result.checkpoint(last, "traditional") > 4 * result.checkpoint(first, "traditional")
    # The 2,048-process traditional checkpoint is the paper's ~120 s anchor
    # (doubled for CG, which checkpoints x and p).
    anchor = result.checkpoint(last, "traditional")
    if method == "cg":
        assert 180 < anchor < 280
    else:
        assert 100 < anchor < 140
